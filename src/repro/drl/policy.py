"""The MSP's actor-critic network and action scaling.

Per the paper (Sec. IV-A5), the policy ``π_θ`` and value function ``V_πθ``
share the same network parameters: a common trunk (two 64-unit tanh
layers) with a Gaussian actor head and a scalar critic head on top.

Actions: the network emits an unbounded "raw" action; the price is an
affine map of the raw action clipped to the feasible ``[C, p_max]``
(raw 0 → the mid price, raw ±1 → the interval edges). PPO's probability
ratios are computed on the raw action, which keeps the log-probabilities
exact and the squashing outside the likelihood.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.distributions import DiagonalGaussian
from repro.nn.init import constant
from repro.nn.modules import Linear, Module, Sequential, Tanh
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import SeedLike, as_generator, spawn_children

__all__ = ["ActionScaler", "ActorCritic"]


@dataclass(frozen=True)
class ActionScaler:
    """Affine map between raw policy actions and feasible prices.

    ``price = clip(mid + half_range · raw, low, high)`` where
    ``mid = (low + high)/2`` and ``half_range = (high − low)/2``, so the
    raw interval ``[−1, 1]`` spans the whole feasible price range.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ConfigurationError(
                f"need low < high, got [{self.low}, {self.high}]"
            )

    @property
    def mid(self) -> float:
        """Centre of the price interval."""
        return 0.5 * (self.low + self.high)

    @property
    def half_range(self) -> float:
        """Half-width of the price interval."""
        return 0.5 * (self.high - self.low)

    def to_price(self, raw: np.ndarray | float) -> np.ndarray | float:
        """Map a raw action to a feasible price."""
        return np.clip(self.mid + self.half_range * raw, self.low, self.high)

    def to_raw(self, price: np.ndarray | float) -> np.ndarray | float:
        """Inverse map (prices at the boundary map to raw ±1)."""
        return (np.asarray(price, dtype=float) - self.mid) / self.half_range


class ActorCritic(Module):
    """Shared-trunk actor-critic for a 1-D continuous pricing action.

    Args:
        obs_dim: observation width (L·(1+N) for the migration POMDP).
        hidden_sizes: trunk widths (paper: (64, 64)).
        action_dim: action width (1 for the unit price).
        initial_log_std: starting exploration scale of the Gaussian head.
        seed: initialisation seed.
    """

    def __init__(
        self,
        obs_dim: int,
        hidden_sizes: tuple[int, ...] = (64, 64),
        *,
        action_dim: int = 1,
        initial_log_std: float = -0.5,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if obs_dim < 1 or action_dim < 1:
            raise ConfigurationError(
                f"obs_dim and action_dim must be >= 1, got {obs_dim}, {action_dim}"
            )
        if not hidden_sizes:
            raise ConfigurationError("need at least one hidden layer")
        seeds = spawn_children(seed, 2 * len(hidden_sizes) + 2)
        layers: list[Module] = []
        widths = [obs_dim, *hidden_sizes]
        for i, (fan_in, fan_out) in enumerate(zip(widths[:-1], widths[1:])):
            layers.append(
                Linear(fan_in, fan_out, gain=float(np.sqrt(2.0)), seed=seeds[i])
            )
            layers.append(Tanh())
        self.trunk = Sequential(*layers)
        self.actor_head = Linear(widths[-1], action_dim, gain=0.01, seed=seeds[-2])
        self.critic_head = Linear(widths[-1], 1, gain=1.0, seed=seeds[-1])
        self.log_std = Tensor(
            constant(initial_log_std, action_dim), requires_grad=True
        )
        self.obs_dim = obs_dim
        self.action_dim = action_dim

    def _features(self, observations: Tensor) -> Tensor:
        if observations.ndim != 2 or observations.shape[1] != self.obs_dim:
            raise ConfigurationError(
                f"expected observations of shape (batch, {self.obs_dim}), "
                f"got {observations.shape}"
            )
        return self.trunk(observations)

    def distribution(self, observations: Tensor) -> DiagonalGaussian:
        """The Gaussian policy ``π_θ(· | o)`` for a batch of observations."""
        features = self._features(observations)
        return DiagonalGaussian(self.actor_head(features), self.log_std)

    def value(self, observations: Tensor) -> Tensor:
        """Critic estimates ``V_πθ(o)``, shape (batch,)."""
        features = self._features(observations)
        return self.critic_head(features).squeeze(-1)

    def evaluate(self, observations: Tensor) -> tuple[DiagonalGaussian, Tensor]:
        """Distribution and value sharing one trunk pass (one graph)."""
        features = self._features(observations)
        dist = DiagonalGaussian(self.actor_head(features), self.log_std)
        return dist, self.critic_head(features).squeeze(-1)

    def act(
        self,
        observation: np.ndarray,
        *,
        seed: SeedLike = None,
        deterministic: bool = False,
    ) -> tuple[np.ndarray, float, float]:
        """Sample an action for one observation (no gradient graph).

        Returns ``(raw_action, log_prob, value)``.
        """
        raws, log_probs, values = self.act_batch(
            np.asarray(observation, dtype=np.float64).reshape(1, -1),
            seed=seed,
            deterministic=deterministic,
        )
        return raws[0], float(log_probs[0]), float(values[0])

    def act_batch(
        self,
        observations: np.ndarray,
        *,
        seed: SeedLike = None,
        deterministic: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample actions for a whole observation batch in one forward pass.

        This is the vector-env hot path: one trunk evaluation serves all
        ``E`` envs, and the Gaussian head draws the ``(E, action_dim)``
        noise block from ``seed`` in a single call — for ``E = 1`` the
        stream consumption (and hence every downstream number) is identical
        to :meth:`act`.

        Returns ``(raw_actions (E, action_dim), log_probs (E,), values (E,))``.
        """
        rng = as_generator(seed)
        obs = np.asarray(observations, dtype=np.float64)
        if obs.ndim != 2:
            raise ConfigurationError(
                f"expected observations of shape (batch, {self.obs_dim}), "
                f"got {obs.shape}"
            )
        with no_grad():
            dist, values = self.evaluate(Tensor(obs))
            raws = dist.mode() if deterministic else dist.sample(rng)
            log_probs = dist.log_prob(raws)
        return raws, log_probs.data.copy(), values.data.copy()
