"""Advantage estimation: discounted returns, Eq. (18), and GAE(λ).

The paper computes the advantage as the full-episode discounted return
minus the value baseline (its Eq. 18), which is exactly GAE with λ = 1.
We implement general GAE(λ) (the paper cites Schulman et al. [14]) and
expose the λ = 1 special case; tests verify the two coincide.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_in_range

__all__ = ["discounted_returns", "paper_advantages", "generalized_advantages"]


def discounted_returns(
    rewards: np.ndarray, gamma: float, *, bootstrap_value: float = 0.0
) -> np.ndarray:
    """Per-step discounted return-to-go ``V^targ_k`` (Eq. 16's target).

    ``G_k = Σ_{l=k}^{K-1} γ^{l-k} r_l + γ^{K-k} V(S_K)`` with
    ``bootstrap_value`` standing in for ``V(S_K)``.
    """
    require_in_range("gamma", gamma, 0.0, 1.0)
    rewards = np.asarray(rewards, dtype=np.float64)
    returns = np.empty_like(rewards)
    running = float(bootstrap_value)
    for k in range(len(rewards) - 1, -1, -1):
        running = rewards[k] + gamma * running
        returns[k] = running
    return returns


def paper_advantages(
    rewards: np.ndarray,
    values: np.ndarray,
    gamma: float,
    *,
    bootstrap_value: float = 0.0,
) -> np.ndarray:
    """The paper's Eq. (18): ``A(S_k) = -V(S_k) + G_k``.

    ``values`` are the critic's estimates along the trajectory (length K);
    ``bootstrap_value`` is ``V(S_K)`` at the terminal observation.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if rewards.shape != values.shape:
        raise ValueError(
            f"rewards and values must align, got {rewards.shape} vs {values.shape}"
        )
    returns = discounted_returns(rewards, gamma, bootstrap_value=bootstrap_value)
    return returns - values


def generalized_advantages(
    rewards: np.ndarray,
    values: np.ndarray,
    gamma: float,
    lam: float,
    *,
    bootstrap_value: float = 0.0,
) -> np.ndarray:
    """GAE(λ) (Schulman et al., 2015).

    ``A_k = Σ_{l≥k} (γλ)^{l-k} δ_l`` with TD residuals
    ``δ_l = r_l + γ V(S_{l+1}) − V(S_l)``. ``λ = 1`` recovers Eq. (18)
    exactly (verified by a test); smaller λ trades variance for bias.
    """
    require_in_range("gamma", gamma, 0.0, 1.0)
    require_in_range("lam", lam, 0.0, 1.0)
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if rewards.shape != values.shape:
        raise ValueError(
            f"rewards and values must align, got {rewards.shape} vs {values.shape}"
        )
    next_values = np.append(values[1:], bootstrap_value)
    deltas = rewards + gamma * next_values - values
    advantages = np.empty_like(deltas)
    running = 0.0
    for k in range(len(deltas) - 1, -1, -1):
        running = deltas[k] + gamma * lam * running
        advantages[k] = running
    return advantages
