"""Advantage estimation: discounted returns, Eq. (18), and GAE(λ).

The paper computes the advantage as the full-episode discounted return
minus the value baseline (its Eq. 18), which is exactly GAE with λ = 1.
We implement general GAE(λ) (the paper cites Schulman et al. [14]) and
expose the λ = 1 special case; tests verify the two coincide.
"""

from __future__ import annotations

from repro.backend import xp

from repro.utils.validation import require_in_range

__all__ = [
    "discounted_returns",
    "paper_advantages",
    "generalized_advantages",
    "discounted_returns_batch",
    "generalized_advantages_batch",
]


def discounted_returns(
    rewards: xp.ndarray, gamma: float, *, bootstrap_value: float = 0.0
) -> xp.ndarray:
    """Per-step discounted return-to-go ``V^targ_k`` (Eq. 16's target).

    ``G_k = Σ_{l=k}^{K-1} γ^{l-k} r_l + γ^{K-k} V(S_K)`` with
    ``bootstrap_value`` standing in for ``V(S_K)``.
    """
    require_in_range("gamma", gamma, 0.0, 1.0)
    rewards = xp.asarray(rewards, dtype=xp.float64)
    returns = xp.empty_like(rewards)
    running = float(bootstrap_value)
    for k in range(len(rewards) - 1, -1, -1):
        running = rewards[k] + gamma * running
        returns[k] = running
    return returns


def paper_advantages(
    rewards: xp.ndarray,
    values: xp.ndarray,
    gamma: float,
    *,
    bootstrap_value: float = 0.0,
) -> xp.ndarray:
    """The paper's Eq. (18): ``A(S_k) = -V(S_k) + G_k``.

    ``values`` are the critic's estimates along the trajectory (length K);
    ``bootstrap_value`` is ``V(S_K)`` at the terminal observation.
    """
    rewards = xp.asarray(rewards, dtype=xp.float64)
    values = xp.asarray(values, dtype=xp.float64)
    if rewards.shape != values.shape:
        raise ValueError(
            f"rewards and values must align, got {rewards.shape} vs {values.shape}"
        )
    returns = discounted_returns(rewards, gamma, bootstrap_value=bootstrap_value)
    return returns - values


def generalized_advantages(
    rewards: xp.ndarray,
    values: xp.ndarray,
    gamma: float,
    lam: float,
    *,
    bootstrap_value: float = 0.0,
) -> xp.ndarray:
    """GAE(λ) (Schulman et al., 2015).

    ``A_k = Σ_{l≥k} (γλ)^{l-k} δ_l`` with TD residuals
    ``δ_l = r_l + γ V(S_{l+1}) − V(S_l)``. ``λ = 1`` recovers Eq. (18)
    exactly (verified by a test); smaller λ trades variance for bias.
    """
    require_in_range("gamma", gamma, 0.0, 1.0)
    require_in_range("lam", lam, 0.0, 1.0)
    rewards = xp.asarray(rewards, dtype=xp.float64)
    values = xp.asarray(values, dtype=xp.float64)
    if rewards.shape != values.shape:
        raise ValueError(
            f"rewards and values must align, got {rewards.shape} vs {values.shape}"
        )
    next_values = xp.append(values[1:], bootstrap_value)
    deltas = rewards + gamma * next_values - values
    advantages = xp.empty_like(deltas)
    running = 0.0
    for k in range(len(deltas) - 1, -1, -1):
        running = deltas[k] + gamma * lam * running
        advantages[k] = running
    return advantages


def _as_batch(name: str, array) -> xp.ndarray:
    array = xp.asarray(array, dtype=xp.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D (E, K), got shape {array.shape}")
    return array


def _as_bootstraps(bootstrap_values, num_envs: int) -> xp.ndarray:
    if bootstrap_values is None:
        return xp.zeros(num_envs, dtype=xp.float64)
    bootstraps = xp.asarray(bootstrap_values, dtype=xp.float64)
    if bootstraps.shape != (num_envs,):
        raise ValueError(
            f"bootstrap_values must have shape ({num_envs},), got {bootstraps.shape}"
        )
    return bootstraps


def discounted_returns_batch(
    rewards: xp.ndarray, gamma: float, *, bootstrap_values=None
) -> xp.ndarray:
    """Discounted return-to-go for ``E`` trajectories at once.

    ``rewards`` has shape ``(E, K)``; ``bootstrap_values`` (default
    zeros) has shape ``(E,)``. Row ``e`` of the result is bitwise
    :func:`discounted_returns` of ``rewards[e]`` — the backward
    recursion runs once per *step* over a length-``E`` column instead of
    once per (env, step) pair, with identical per-element arithmetic.
    """
    require_in_range("gamma", gamma, 0.0, 1.0)
    rewards = _as_batch("rewards", rewards)
    returns = xp.empty_like(rewards)
    running = _as_bootstraps(bootstrap_values, rewards.shape[0])
    for k in range(rewards.shape[1] - 1, -1, -1):
        running = rewards[:, k] + gamma * running
        returns[:, k] = running
    return returns


def generalized_advantages_batch(
    rewards: xp.ndarray,
    values: xp.ndarray,
    gamma: float,
    lam: float,
    *,
    bootstrap_values=None,
) -> xp.ndarray:
    """GAE(λ) for ``E`` trajectories at once, columnwise.

    Inputs have shape ``(E, K)`` (plus ``(E,)`` bootstraps); row ``e``
    of the result is bitwise :func:`generalized_advantages` of row ``e``
    of the inputs. The only loop left is the inherently sequential
    backward recursion over the ``K`` time steps; everything across the
    env axis is a single vector operation per step.
    """
    require_in_range("gamma", gamma, 0.0, 1.0)
    require_in_range("lam", lam, 0.0, 1.0)
    rewards = _as_batch("rewards", rewards)
    values = _as_batch("values", values)
    if rewards.shape != values.shape:
        raise ValueError(
            f"rewards and values must align, got {rewards.shape} vs {values.shape}"
        )
    bootstraps = _as_bootstraps(bootstrap_values, rewards.shape[0])
    next_values = xp.concatenate([values[:, 1:], bootstraps[:, xp.newaxis]], axis=1)
    deltas = rewards + gamma * next_values - values
    advantages = xp.empty_like(deltas)
    running = xp.zeros(rewards.shape[0], dtype=xp.float64)
    for k in range(rewards.shape[1] - 1, -1, -1):
        running = deltas[:, k] + gamma * lam * running
        advantages[:, k] = running
    return advantages
