"""Proximal Policy Optimization for the MSP pricing agent (Eqs. 14-19).

The update maximises the clipped surrogate minus the value-function error:

    L(θ) = E[ min(r_k A_k, f_clip(r_k) A_k) ] − c · E[(V_θ(S_k) − V^targ_k)²]
            + β · E[H(π_θ(·|o_k))]

with importance ratio ``r_k = π_θ(p_k|o_k) / π_θold(p_k|o_k)`` (Eq. 17) and
``f_clip`` the clip of Eq. (19). Entropy regularisation (β) is standard PPO
practice and defaults to a small positive value; set it to 0 for the
strictly-paper objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drl.buffer import MiniBatch
from repro.drl.fused import FusedActorCritic
from repro.drl.policy import ActorCritic
from repro.errors import ConfigurationError
from repro.nn.optim import Adam, FlatAdam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike

__all__ = ["PPOConfig", "UpdateStats", "PPOAgent"]


@dataclass(frozen=True)
class PPOConfig:
    """PPO hyper-parameters (paper defaults from Sec. V-A)."""

    learning_rate: float = 1e-5
    clip_epsilon: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.0
    max_grad_norm: float = 0.5
    normalize_advantages: bool = True

    def __post_init__(self) -> None:
        if self.learning_rate <= 0.0:
            raise ConfigurationError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )
        if not 0.0 < self.clip_epsilon < 1.0:
            raise ConfigurationError(
                f"clip_epsilon must be in (0, 1), got {self.clip_epsilon}"
            )
        if self.value_coef < 0.0 or self.entropy_coef < 0.0:
            raise ConfigurationError("loss coefficients must be >= 0")
        if self.max_grad_norm <= 0.0:
            raise ConfigurationError(
                f"max_grad_norm must be > 0, got {self.max_grad_norm}"
            )


@dataclass(frozen=True)
class UpdateStats:
    """Diagnostics of one PPO gradient step."""

    policy_loss: float
    value_loss: float
    entropy: float
    clip_fraction: float
    approx_kl: float
    grad_norm: float


class PPOAgent:
    """A PPO learner wrapping a shared-trunk :class:`ActorCritic`.

    By default (``fused=True``) the training hot path — action sampling,
    value evaluation, and the PPO update — runs through
    :class:`repro.drl.fused.FusedActorCritic` over a flat-parameter
    :class:`repro.nn.optim.FlatAdam`: no autograd graph, gradients written
    into one contiguous buffer, one fused optimiser step. The fused path
    is bitwise-identical to the reference graph path (``fused=False``),
    which is kept intact as the ground truth; networks whose architecture
    the fused twin does not support fall back to the graph path
    automatically.
    """

    def __init__(
        self,
        network: ActorCritic,
        config: PPOConfig | None = None,
        *,
        fused: bool = True,
    ) -> None:
        self.network = network
        self.config = config if config is not None else PPOConfig()
        self._fused = FusedActorCritic.compile(network) if fused else None
        optimizer_cls = FlatAdam if self._fused is not None else Adam
        self.optimizer = optimizer_cls(
            list(network.parameters()), learning_rate=self.config.learning_rate
        )

    @property
    def fused(self) -> bool:
        """Whether the fused (graph-free) hot path is active."""
        return self._fused is not None

    def act(
        self,
        observation: np.ndarray,
        *,
        seed: SeedLike = None,
        deterministic: bool = False,
    ) -> tuple[np.ndarray, float, float]:
        """Delegate to the network's sampling path."""
        if self._fused is not None:
            raws, log_probs, values = self._fused.act_batch(
                np.asarray(observation, dtype=np.float64).reshape(1, -1),
                seed=seed,
                deterministic=deterministic,
            )
            return raws[0], float(log_probs[0]), float(values[0])
        return self.network.act(
            observation, seed=seed, deterministic=deterministic
        )

    def act_batch(
        self,
        observations: np.ndarray,
        *,
        seed: SeedLike = None,
        deterministic: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched sampling path: one forward pass for ``(E, obs_dim)``."""
        if self._fused is not None:
            return self._fused.act_batch(
                observations, seed=seed, deterministic=deterministic
            )
        return self.network.act_batch(
            observations, seed=seed, deterministic=deterministic
        )

    def value(self, observation: np.ndarray) -> float:
        """Critic value for a single observation (no graph)."""
        obs = np.asarray(observation, dtype=np.float64).reshape(1, -1)
        return float(self.value_batch(obs)[0])

    def value_batch(self, observations: np.ndarray) -> np.ndarray:
        """Critic values for an observation batch, shape ``(E,)`` (no graph)."""
        from repro.nn.tensor import no_grad

        if self._fused is not None:
            return self._fused.value_batch(observations)
        obs = np.asarray(observations, dtype=np.float64)
        with no_grad():
            return self.network.value(Tensor(obs)).data.copy()

    def update(self, batch: MiniBatch) -> UpdateStats:
        """One gradient step on a mini-batch (Eq. 14).

        Dispatches to the fused path when active; the body below is the
        reference autograd implementation.
        """
        if self._fused is not None:
            return self._fused.update(self.optimizer, self.config, batch)
        return self._update_reference(batch)

    def _update_reference(self, batch: MiniBatch) -> UpdateStats:
        """The seed graph-based update — the fused path's bitwise oracle."""
        cfg = self.config
        advantages = batch.advantages.astype(np.float64)
        if cfg.normalize_advantages and advantages.size > 1:
            std = advantages.std()
            advantages = (advantages - advantages.mean()) / (std + 1e-8)

        self.optimizer.zero_grad()
        dist, values = self.network.evaluate(Tensor(batch.observations))
        log_probs = dist.log_prob(batch.actions)
        ratio = (log_probs - Tensor(batch.old_log_probs)).exp()  # Eq. (17)
        adv = Tensor(advantages)
        unclipped = ratio * adv
        clipped = ratio.clamp(1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon) * adv
        policy_objective = unclipped.minimum(clipped).mean()  # Eq. (15)
        value_loss = ((values - Tensor(batch.returns)) ** 2.0).mean()  # Eq. (16)
        entropy = dist.entropy().mean()
        # Maximise objective == minimise negative loss (Eq. 14).
        loss = (
            -policy_objective
            + cfg.value_coef * value_loss
            - cfg.entropy_coef * entropy
        )
        loss.backward()
        grad_norm = clip_grad_norm(self.optimizer.parameters, cfg.max_grad_norm)
        self.optimizer.step()

        ratio_values = ratio.data
        clip_fraction = float(
            np.mean(np.abs(ratio_values - 1.0) > cfg.clip_epsilon)
        )
        approx_kl = float(np.mean(batch.old_log_probs - log_probs.data))
        return UpdateStats(
            policy_loss=float(-policy_objective.item()),
            value_loss=float(value_loss.item()),
            entropy=float(entropy.item()),
            clip_fraction=clip_fraction,
            approx_kl=approx_kl,
            grad_norm=float(grad_norm),
        )
