"""Future-work extension: competition between multiple MSPs.

Run:  python examples/multi_msp_competition.py

The paper's market has a single monopolist MSP; its conclusion proposes
extending to multiple MSPs. This example runs the oligopoly extension and
shows the classic economics:

1. a single provider recovers the paper's monopoly equilibrium;
2. a second identical provider triggers Bertrand undercutting — prices
   collapse to marginal cost (+1 tick) and the providers' profit vanishes;
3. VMUs capture the surplus: their utility rises sharply under
   competition;
4. asymmetric costs: the low-cost provider wins the whole market, priced
   just under the rival's cost floor.
"""

from repro.core import StackelbergMarket
from repro.core.multimsp import MspSpec, MultiMspMarket
from repro.core.utilities import vmu_utilities
from repro.entities import paper_fig2_population
from repro.utils import Table


def main() -> None:
    vmus = paper_fig2_population()
    monopoly = StackelbergMarket(vmus).equilibrium()

    table = Table(
        headers=("scenario", "p_low", "p_high", "profit_total", "vmu_utility_total"),
        title="Monopoly vs competition (paper's 2-VMU population)",
    )

    def vmu_welfare(market: MultiMspMarket, prices) -> float:
        outcome = market.outcome(list(prices))
        best_price = float(min(prices))
        utilities = vmu_utilities(
            market._alphas,  # noqa: SLF001 - illustrative script
            market._data,
            outcome.vmu_allocations,
            best_price,
            market.spectral_efficiency,
        )
        return float(utilities.sum())

    # 1. single MSP == the paper's monopoly
    single = MultiMspMarket(vmus, [MspSpec("msp", unit_cost=5.0, capacity=0.5)])
    eq1 = single.equilibrium()
    table.add_row(
        "monopoly",
        float(eq1.prices.min()),
        float(eq1.prices.max()),
        float(eq1.msp_utilities.sum()),
        vmu_welfare(single, eq1.prices),
    )

    # 2. identical duopoly: Bertrand collapse
    duo = MultiMspMarket(
        vmus,
        [
            MspSpec("msp-a", unit_cost=5.0, capacity=10.0),
            MspSpec("msp-b", unit_cost=5.0, capacity=10.0),
        ],
    )
    eq2 = duo.equilibrium(initial_prices=[25.0, 30.0])
    table.add_row(
        "identical duopoly",
        float(eq2.prices.min()),
        float(eq2.prices.max()),
        float(eq2.msp_utilities.sum()),
        vmu_welfare(duo, eq2.prices),
    )

    # 3. asymmetric costs
    asym = MultiMspMarket(
        vmus,
        [
            MspSpec("cheap", unit_cost=5.0, capacity=10.0),
            MspSpec("dear", unit_cost=12.0, capacity=10.0),
        ],
    )
    eq3 = asym.equilibrium(initial_prices=[20.0, 20.0])
    table.add_row(
        "asymmetric duopoly",
        float(eq3.prices.min()),
        float(eq3.prices.max()),
        float(eq3.msp_utilities.sum()),
        vmu_welfare(asym, eq3.prices),
    )

    print(f"paper's monopoly equilibrium: p* = {monopoly.price:.2f}, "
          f"MSP utility = {monopoly.msp_utility:.3f}\n")
    print(table)
    print(
        "\nBertrand takeaway: one extra provider moves the price from "
        f"{monopoly.price:.2f} to {float(eq2.prices.min()):.2f} and hands "
        "the surplus to the VMUs."
    )


if __name__ == "__main__":
    main()
