"""Quickstart: build the paper's market and solve it analytically.

Run:  python examples/quickstart.py

Covers the core API in ~40 lines: the AoTM metric (Eq. 1), follower best
responses (Eq. 8), and the unique Stackelberg equilibrium (Theorem 2),
using the exact population of the paper's Fig. 2 (two VMUs, D = 200/100 MB,
α = 5).
"""

from repro.core import StackelbergMarket, aotm_mb
from repro.entities import paper_fig2_population
from repro.utils import Table


def main() -> None:
    market = StackelbergMarket(paper_fig2_population())

    print(f"link spectral efficiency: {market.spectral_efficiency:.2f} bit/s/Hz")
    print(f"closed-form p* (unconstrained): "
          f"{market.unconstrained_equilibrium_price():.3f}")

    equilibrium = market.equilibrium()
    print(f"\nStackelberg equilibrium price: {equilibrium.price:.3f}")
    print(f"MSP utility at equilibrium:    {equilibrium.msp_utility:.3f}")

    table = Table(
        headers=("vmu", "D (MB)", "alpha", "b* (market units)", "AoTM", "utility"),
        title="\nPer-VMU equilibrium outcome",
    )
    for vmu, bandwidth, utility in zip(
        market.vmus, equilibrium.demands, equilibrium.vmu_utilities
    ):
        table.add_row(
            vmu.vmu_id,
            vmu.data_size_mb,
            vmu.immersion_coef,
            float(market.to_market_units(bandwidth)),
            aotm_mb(vmu.data_size_mb, float(bandwidth), link=market.link),
            float(utility),
        )
    print(table)

    # What happens off-equilibrium: followers still best-respond.
    for price in (10.0, equilibrium.price, 45.0):
        outcome = market.round_outcome(price)
        print(
            f"price {price:6.2f} -> total demand "
            f"{market.to_market_units(outcome.total_allocated):6.2f}, "
            f"MSP utility {outcome.msp_utility:6.3f}"
        )


if __name__ == "__main__":
    main()
