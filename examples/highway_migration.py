"""End-to-end scenario: vehicles on a highway, handovers, priced migrations.

Run:  python examples/highway_migration.py

This is the story of the paper's Fig. 1 executed on every substrate in the
library: vehicles drive a 5 km highway (mobility substrate), coverage
handovers generate VT migration tasks, the MSP prices bandwidth with the
Stackelberg-equilibrium policy (incentive mechanism), each VMU buys its
best response, and pre-copy live migration moves the twin (migration
substrate), yielding the measured Age of Twin Migration per event.
"""

from repro.baselines import OraclePricing
from repro.core import StackelbergMarket
from repro.entities import VmuProfile, World
from repro.migration import run_migration_pipeline
from repro.mobility import (
    RouteFollower,
    deploy_rsus_along_highway,
    simulate_handovers,
    straight_highway,
)
from repro.utils import Table

HIGHWAY_M = 5000.0
DURATION_S = 240.0


def main() -> None:
    # --- world ----------------------------------------------------------
    network = straight_highway(HIGHWAY_M, num_junctions=11)
    rsus = deploy_rsus_along_highway(
        HIGHWAY_M, spacing_m=1000.0, coverage_radius_m=700.0
    )
    vmus = [
        VmuProfile("veh-0", data_size_mb=200.0, immersion_coef=5.0),
        VmuProfile("veh-1", data_size_mb=100.0, immersion_coef=5.0),
        VmuProfile("veh-2", data_size_mb=150.0, immersion_coef=12.0),
    ]
    world = World()
    for rsu in rsus:
        world.add_rsu(rsu)
    for vmu in vmus:
        world.add_vmu(vmu, host_rsu_id="rsu-0", dirty_rate_mb_s=2.0)

    # --- mobility: everyone drives the full highway ----------------------
    route = [f"j{k}" for k in range(11)]
    agents = [
        RouteFollower(vmu.vmu_id, network, route, speed_factor=0.8 + 0.2 * i)
        for i, vmu in enumerate(vmus)
    ]
    simulation = simulate_handovers(agents, rsus, duration_s=DURATION_S)
    print(
        f"{len(simulation.events)} handover events, "
        f"{len(simulation.migrations)} require VT migration"
    )

    # --- price and execute the migrations --------------------------------
    market = StackelbergMarket(vmus)
    policy = OraclePricing(market)
    result = run_migration_pipeline(world, market, policy, simulation.events)

    table = Table(
        headers=("t (s)", "vehicle", "from", "to", "price", "b", "AoTM (s)", "downtime (s)"),
        title="\nServiced migrations",
    )
    for step in result.completed:
        table.add_row(
            step.event.time_s,
            step.event.vehicle_id,
            step.event.source_rsu_id,
            step.event.destination_rsu_id,
            step.price,
            float(market.to_market_units(step.bandwidth)),
            step.report.measured_aotm_s,
            step.report.downtime_s,
        )
    print(table)
    print(
        f"\nmean measured AoTM : {result.mean_measured_aotm:.3f} s"
        f"\nMSP profit          : {result.total_msp_profit:.3f}"
    )
    world.check_invariants()
    print("world hosting invariants hold after all migrations")


if __name__ == "__main__":
    main()
