"""Beyond the paper's settings: heterogeneous populations and capacity.

Run:  python examples/custom_market.py

Demonstrates the library on markets the paper never plots:

1. a heterogeneous population sampled from the paper's parameter ranges
   (D ∈ [100, 300] MB, α ∈ [5, 20]) — follower drop-out appears: at high
   prices, low-value VMUs leave the market;
2. capacity pressure — shrinking B_max pushes the equilibrium price above
   the unconstrained closed form (the Fig. 3(c) effect, isolated);
3. a stochastic channel — Rayleigh fading realisations shift the spectral
   efficiency and hence the whole equilibrium.
"""

import numpy as np

from repro.channel import RayleighFading, paper_link
from repro.core import MarketConfig, StackelbergMarket
from repro.entities import paper_fig2_population, sample_population
from repro.utils import Table


def heterogeneous_market() -> None:
    vmus = sample_population(6, seed=42)
    market = StackelbergMarket(vmus)
    equilibrium = market.equilibrium()
    print(f"heterogeneous equilibrium: p* = {equilibrium.price:.2f}, "
          f"MSP utility = {equilibrium.msp_utility:.3f}")

    thresholds = market.dropout_thresholds()
    table = Table(
        headers=("vmu", "D (MB)", "alpha", "dropout price", "b* (market)"),
        title="\nFollower drop-out thresholds",
    )
    for vmu, threshold, demand in zip(vmus, thresholds, equilibrium.demands):
        table.add_row(
            vmu.vmu_id,
            vmu.data_size_mb,
            vmu.immersion_coef,
            float(threshold),
            float(market.to_market_units(demand)),
        )
    print(table)


def capacity_pressure() -> None:
    # The paper's two-VMU market demands ~31.7 market units at the
    # unconstrained optimum, so B_max below that starts binding.
    vmus = paper_fig2_population()
    print("\nCapacity pressure (paper's 2-VMU market, shrinking B_max):")
    for bmax in (50.0, 30.0, 20.0, 10.0):
        config = MarketConfig(max_bandwidth=bmax)
        market = StackelbergMarket(vmus, config=config)
        eq = market.equilibrium()
        print(
            f"  B_max {bmax:6.1f} -> p* {eq.price:6.2f} "
            f"(unconstrained {market.unconstrained_equilibrium_price():.2f}), "
            f"capacity binding: {eq.capacity_binding}"
        )


def faded_channels() -> None:
    vmus = paper_fig2_population()
    rng = np.random.default_rng(2024)
    gains = RayleighFading().sample(rng, size=5)
    print("\nRayleigh-faded links (paper's 2-VMU market, 5 draws):")
    for gain in gains:
        link = paper_link().with_fading_gain(float(gain))
        market = StackelbergMarket(vmus, link=link)
        eq = market.equilibrium()
        print(
            f"  fading gain {gain:5.2f} -> SE {link.spectral_efficiency:6.2f} "
            f"-> p* {eq.price:6.2f}, MSP utility {eq.msp_utility:6.3f}"
        )


if __name__ == "__main__":
    heterogeneous_market()
    capacity_pressure()
    faded_channels()
