"""Train the DRL incentive mechanism under incomplete information (Fig. 2).

Run:  python examples/train_drl_pricing.py [--paper]

The MSP agent only sees the public history of (price, demand) pairs — it
never observes the VMUs' private α_n / D_n — and still converges to the
complete-information Stackelberg equilibrium. The default budget is the
quick preset (~30 s); ``--paper`` uses the full Sec. V-A budget.
"""

import argparse

from repro.core import StackelbergMarket
from repro.entities import paper_fig2_population
from repro.experiments import ExperimentConfig, evaluate_policy, run_fig2, train_drl


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--paper", action="store_true", help="full paper budget")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = (
        ExperimentConfig.paper(seed=args.seed)
        if args.paper
        else ExperimentConfig.quick(seed=args.seed)
    )

    result = run_fig2(config)
    print(result.table())
    print(
        f"\nconverged best utility : {result.converged_utility:.4f}"
        f"\nequilibrium utility    : {result.equilibrium_utility:.4f}"
        f"\nrelative gap           : {result.utility_gap:.2%}"
    )

    # The trained policy also transfers to live evaluation rounds.
    market = StackelbergMarket(paper_fig2_population())
    trained = train_drl(market, config)
    evaluation = evaluate_policy(market, trained.policy, rounds=50)
    print(
        f"\nlive evaluation: mean price {evaluation.mean_price:.2f}, "
        f"mean MSP utility {evaluation.mean_msp_utility:.3f}"
    )


if __name__ == "__main__":
    main()
