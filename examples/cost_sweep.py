"""Reproduce the Fig. 3(a)/(b) transmission-cost sweep (DRL vs baselines).

Run:  python examples/cost_sweep.py [--paper]

Sweeps the MSP's unit transmission cost C from 5 to 9 over the two-VMU
market, comparing the proposed DRL scheme against the random and greedy
baselines and the complete-information Stackelberg equilibrium. Expected
shapes (paper anchors): price rises ~25 -> ~34, total purchased bandwidth
falls ~28 -> ~22, both MSP and VMU utilities decline with cost, and DRL
tracks the equilibrium while beating both baselines.
"""

import argparse

from repro.experiments import ExperimentConfig, run_fig3_cost


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--paper", action="store_true", help="full paper budget")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = (
        ExperimentConfig.paper(seed=args.seed)
        if args.paper
        else ExperimentConfig.quick(seed=args.seed)
    )
    result = run_fig3_cost(config)
    print(result.msp_table())
    print()
    print(result.vmu_table())

    drl = result.series("drl", "mean_msp_utility")
    eq = result.series("equilibrium", "mean_msp_utility")
    random_ = result.series("random", "mean_msp_utility")
    gaps = [abs(d - e) / e for d, e in zip(drl, eq)]
    print(f"\nmax DRL-vs-equilibrium utility gap over the sweep: {max(gaps):.2%}")
    print(
        "DRL beats random at every cost: "
        f"{all(d >= r for d, r in zip(drl, random_))}"
    )


if __name__ == "__main__":
    main()
