"""MutableMarketStack: incremental dirty-row re-solve invariants.

Acceptance for the live pricing layer: after *any* sequence of point
updates, ``equilibria_live()`` — which re-solves only the dirty rows and
splices them into the cached stack — is bitwise-equal to a cold
``equilibria_stacked()`` over the current markets, in both refine modes
and at every dirty fraction (one row, ~10 %, all rows). Plus the
scalar-accessor cache contract under splicing: clean rows keep their
cached scalar objects (identity), a dirty row's entry is dropped, and
infeasible↔feasible transitions round-trip.
"""

import numpy as np
import pytest
from test_core_equilibria_stacked import infeasible_market, random_markets

from repro.core import MarketStack, MutableMarketStack
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import VmuProfile
from repro.errors import ConfigurationError, InfeasibleMarketError

ARRAY_FIELDS = (
    "prices",
    "demands",
    "msp_utilities",
    "vmu_utilities",
    "capacity_binding",
    "price_cap_binding",
    "feasible",
    "mask",
    "counts",
    "unit_costs",
)


def assert_bitwise_equal(live, cold):
    for name in ARRAY_FIELDS:
        a, b = getattr(live, name), getattr(cold, name)
        assert a.shape == b.shape, name
        assert np.array_equal(a, b, equal_nan=True), name


def apply_random_update(mutable, rng, index):
    """One random point update on market ``index`` (join/leave/fading/replace)."""
    market = mutable.market(index)
    move = int(rng.integers(4))
    if move == 0:  # join
        vmu = VmuProfile(
            vmu_id=f"joined-{int(rng.integers(1 << 30))}",
            data_size_mb=float(rng.uniform(50.0, 500.0)),
            immersion_coef=float(rng.uniform(1.0, 10.0)),
        )
        mutable.join(index, vmu)
    elif move == 1 and len(market.vmus) > 1:  # leave
        victim = market.vmus[int(rng.integers(len(market.vmus)))]
        mutable.leave(index, victim.vmu_id)
    elif move == 2:  # fading drift
        mutable.set_fading_gain(index, float(rng.uniform(0.05, 3.0)))
    else:  # wholesale replacement (new cost/cap too)
        replacement = random_markets(
            1, root_seed=int(rng.integers(1 << 30)), max_vmus=9
        )[0]
        mutable.update_market(index, replacement)


class TestIncrementalBitwise:
    """The tentpole property: live == cold, bitwise, after every update."""

    @pytest.mark.parametrize("refine", [True, False])
    @pytest.mark.parametrize(
        "dirty_fraction", ["one", "tenth", "all"], ids=["1row", "10pct", "all"]
    )
    def test_random_update_sequences(self, refine, dirty_fraction):
        rng = np.random.default_rng([61, refine, len(dirty_fraction)])
        mutable = MutableMarketStack(random_markets(50, root_seed=7))
        num = mutable.num_markets
        per_step = {"one": 1, "tenth": max(1, num // 10), "all": num}[
            dirty_fraction
        ]
        for _ in range(4):
            targets = rng.choice(num, size=per_step, replace=False)
            for index in targets:
                apply_random_update(mutable, rng, int(index))
            assert set(mutable.dirty_indices(refine=refine)) == {
                int(t) for t in targets
            }
            live = mutable.equilibria_live(refine=refine)
            cold = MarketStack(list(mutable.markets)).equilibria_stacked(
                refine=refine
            )
            assert_bitwise_equal(live, cold)
            assert not mutable.dirty_indices(refine=refine)

    def test_ragged_width_changes_stay_bitwise(self):
        """Joins/leaves that change N_max (wider and narrower) re-pad
        correctly, including NaN tails of infeasible rows."""
        markets = random_markets(6, root_seed=13, max_vmus=3)
        markets[2] = infeasible_market()  # N=1, all-NaN row
        mutable = MutableMarketStack(markets)
        mutable.equilibria_live()
        # Widen N_max: grow market 4 well past the current max.
        for j in range(6):
            mutable.join(
                4, VmuProfile(f"w{j}", data_size_mb=120.0, immersion_coef=4.0)
            )
        live = mutable.equilibria_live()
        assert_bitwise_equal(
            live, MarketStack(list(mutable.markets)).equilibria_stacked()
        )
        # Narrow N_max back down: replace the wide market with a 1-VMU one.
        mutable.update_market(
            4,
            StackelbergMarket(
                [VmuProfile("solo", data_size_mb=150.0, immersion_coef=5.0)]
            ),
        )
        live = mutable.equilibria_live()
        assert_bitwise_equal(
            live, MarketStack(list(mutable.markets)).equilibria_stacked()
        )

    def test_infeasible_feasible_transitions(self):
        markets = random_markets(5, root_seed=3)
        mutable = MutableMarketStack(markets)
        mutable.equilibria_live()
        # feasible -> infeasible
        mutable.update_market(1, infeasible_market())
        live = mutable.equilibria_live()
        assert not live.feasible[1]
        assert np.isnan(live.prices[1])
        with pytest.raises(InfeasibleMarketError, match="no profitable trade"):
            live.equilibrium(1)
        assert_bitwise_equal(
            live, MarketStack(list(mutable.markets)).equilibria_stacked()
        )
        # infeasible -> feasible
        mutable.update_market(1, random_markets(1, root_seed=99)[0])
        live = mutable.equilibria_live()
        assert live.feasible[1]
        assert live.equilibrium(1).price == live.prices[1]
        assert_bitwise_equal(
            live, MarketStack(list(mutable.markets)).equilibria_stacked()
        )

    def test_first_solve_and_all_dirty_take_cold_path(self):
        mutable = MutableMarketStack(random_markets(8, root_seed=5))
        mutable.equilibria_live()
        assert mutable.solve_count == 1
        assert mutable.rows_resolved == 8
        for index in range(8):
            mutable.set_fading_gain(index, 0.5)
        mutable.equilibria_live()
        assert mutable.solve_count == 2
        assert mutable.rows_resolved == 16  # full cold solve again

    def test_incremental_work_is_proportional_to_dirty_rows(self):
        mutable = MutableMarketStack(random_markets(40, root_seed=11))
        mutable.equilibria_live()
        mutable.set_fading_gain(17, 0.8)
        mutable.equilibria_live()
        assert mutable.rows_resolved == 41  # 40 cold + 1 dirty

    def test_clean_repeat_solves_nothing(self):
        mutable = MutableMarketStack(random_markets(6, root_seed=29))
        first = mutable.equilibria_live()
        assert mutable.equilibria_live() is first
        assert mutable.solve_count == 1


class TestSplicedScalarCache:
    """StackedEquilibria.equilibrium() cache invariants under splicing."""

    def test_clean_rows_keep_cached_scalars_by_identity(self):
        mutable = MutableMarketStack(random_markets(8, root_seed=17))
        before = mutable.equilibria_live()
        kept = {m: before.equilibrium(m) for m in (0, 3, 6)}
        mutable.set_fading_gain(4, 0.6)
        after = mutable.equilibria_live()
        for m, scalar in kept.items():
            assert after.equilibrium(m) is scalar

    def test_dirty_row_cache_entry_is_invalidated_alone(self):
        mutable = MutableMarketStack(random_markets(8, root_seed=17))
        before = mutable.equilibria_live()
        stale_scalar = before.equilibrium(4)
        clean_scalar = before.equilibrium(5)
        mutable.set_fading_gain(4, 0.6)
        after = mutable.equilibria_live()
        fresh = after.equilibrium(4)
        assert fresh is not stale_scalar
        assert fresh.price != stale_scalar.price or not np.array_equal(
            fresh.demands, stale_scalar.demands
        )
        assert after.equilibrium(5) is clean_scalar

    def test_spliced_result_is_frozen_and_cached_rows_read_only(self):
        mutable = MutableMarketStack(random_markets(4, root_seed=31))
        mutable.equilibria_live()
        mutable.set_fading_gain(2, 0.4)
        live = mutable.equilibria_live()
        with pytest.raises(ValueError):
            live.prices[0] = 1.0
        with pytest.raises(ValueError):
            live.equilibrium(0).demands[0] = 0.0

    def test_old_snapshot_untouched_by_splice(self):
        """Splicing builds a new result; the previous snapshot's arrays
        and cache still describe the pre-update state."""
        mutable = MutableMarketStack(random_markets(5, root_seed=41))
        before = mutable.equilibria_live()
        old_price = float(before.prices[2])
        mutable.set_fading_gain(2, 0.3)
        after = mutable.equilibria_live()
        assert before.prices[2] == old_price
        assert after is not before


class TestMutationApi:
    def test_leave_unknown_vmu_rejected(self):
        mutable = MutableMarketStack(random_markets(3, root_seed=2))
        with pytest.raises(ConfigurationError, match="no VMU"):
            mutable.leave(0, "nobody")

    def test_leave_last_member_rejected(self):
        market = StackelbergMarket(
            [VmuProfile("only", data_size_mb=100.0, immersion_coef=5.0)]
        )
        mutable = MutableMarketStack([market])
        with pytest.raises(ConfigurationError, match="last"):
            mutable.leave(0, "only")

    def test_out_of_range_index_rejected(self):
        mutable = MutableMarketStack(random_markets(3, root_seed=2))
        with pytest.raises(ConfigurationError):
            mutable.set_fading_gain(3, 1.0)

    def test_update_requires_market_instance(self):
        mutable = MutableMarketStack(random_markets(3, root_seed=2))
        with pytest.raises(ConfigurationError):
            mutable.update_market(0, "not a market")


class TestWarmStart:
    """Opt-in warm-started refinement: tolerance-level agreement, and the
    stale fallback keeps large jumps correct."""

    def test_small_drift_matches_cold_within_tolerance(self):
        mutable = MutableMarketStack(random_markets(20, root_seed=47))
        mutable.equilibria_live()
        rng = np.random.default_rng(5)
        for index in rng.choice(20, size=4, replace=False):
            market = mutable.market(int(index))
            gain = market.link.budget.fading_gain * float(
                rng.uniform(0.97, 1.03)
            )
            mutable.set_fading_gain(int(index), gain)
        warm = mutable.equilibria_live(warm_start=True)
        cold = MarketStack(list(mutable.markets)).equilibria_stacked()
        np.testing.assert_allclose(
            warm.prices, cold.prices, rtol=0.0, atol=1e-6
        )
        np.testing.assert_allclose(
            warm.msp_utilities, cold.msp_utilities, rtol=1e-6
        )

    def test_large_jump_falls_back_to_full_scan(self):
        """A replacement that moves the optimum far outside the warm
        bracket must still land on the cold answer (stale rule)."""
        mutable = MutableMarketStack(random_markets(10, root_seed=53))
        mutable.equilibria_live()
        jolt = random_markets(1, root_seed=1234, max_vmus=9)[0]
        jolt = jolt.with_unit_cost(jolt.config.unit_cost * 0.5)
        mutable.update_market(3, jolt)
        warm = mutable.equilibria_live(warm_start=True)
        cold = MarketStack(list(mutable.markets)).equilibria_stacked()
        np.testing.assert_allclose(
            warm.prices, cold.prices, rtol=0.0, atol=1e-6
        )

    def test_previously_infeasible_row_takes_cold_path(self):
        markets = random_markets(4, root_seed=59)
        markets[1] = infeasible_market()
        mutable = MutableMarketStack(markets)
        mutable.equilibria_live()
        mutable.update_market(1, random_markets(1, root_seed=60)[0])
        warm = mutable.equilibria_live(warm_start=True)
        cold = MarketStack(list(mutable.markets)).equilibria_stacked()
        assert warm.feasible[1]
        np.testing.assert_allclose(
            warm.prices, cold.prices, rtol=0.0, atol=1e-6
        )

    def test_warm_results_never_memoised(self):
        mutable = MutableMarketStack(random_markets(6, root_seed=67))
        mutable.equilibria_live()
        mutable.set_fading_gain(0, 0.7)
        warm = mutable.equilibria_live(warm_start=True)
        again = mutable.equilibria_live(warm_start=True)
        assert again is warm  # cached at the mutable layer (no dirt)

    def test_warm_without_refine_rejected(self):
        stack = MarketStack(random_markets(3, root_seed=71))
        with pytest.raises(ConfigurationError, match="refine"):
            stack.equilibria_stacked(
                refine=False,
                warm_lows=np.zeros(3),
                warm_highs=np.ones(3),
            )
