"""Robustness-sweep tests (distance, fading, population draws)."""

import pytest

from repro.channel.fading import LogNormalShadowing
from repro.experiments.robustness import (
    run_distance_sweep,
    run_fading_sweep,
    run_population_sweep,
)


class TestDistanceSweep:
    def test_se_and_price_fall_with_distance(self):
        result = run_distance_sweep(distances_m=(250.0, 500.0, 1000.0, 2000.0))
        se = result.spectral_efficiencies
        prices = result.prices
        assert all(a > b for a, b in zip(se, se[1:]))
        assert all(a > b for a, b in zip(prices, prices[1:]))

    def test_paper_distance_reproduces_fig3_anchor(self):
        result = run_distance_sweep(distances_m=(500.0,))
        assert result.prices[0] == pytest.approx(25.34, abs=0.01)
        assert result.msp_utilities[0] == pytest.approx(6.444, abs=0.01)

    def test_price_scales_with_sqrt_se(self):
        # p* = sqrt(C SE Σα/ΣD): price ratio equals sqrt(SE ratio).
        result = run_distance_sweep(distances_m=(500.0, 2000.0))
        se_ratio = (
            result.spectral_efficiencies[1] / result.spectral_efficiencies[0]
        )
        price_ratio = result.prices[1] / result.prices[0]
        assert price_ratio == pytest.approx(se_ratio**0.5, rel=1e-6)

    def test_table_renders(self):
        result = run_distance_sweep(distances_m=(500.0, 1000.0))
        assert "RSU separation" in str(result.table())


class TestFadingSweep:
    def test_summary_brackets_nominal(self):
        result = run_fading_sweep(draws=40, seed=0)
        # The no-fading equilibrium price (25.34) should lie inside the
        # spread of faded outcomes.
        assert min(result.prices) < 25.34 < max(result.prices)

    def test_draw_count(self):
        result = run_fading_sweep(draws=10, seed=0)
        assert len(result.prices) == 10
        assert result.price_stats.count == 10

    def test_custom_fading_model(self):
        result = run_fading_sweep(
            fading=LogNormalShadowing(sigma_db=4.0), draws=10, seed=0
        )
        assert result.utility_stats.mean > 0.0

    def test_invalid_draws(self):
        with pytest.raises(ValueError):
            run_fading_sweep(draws=1)

    def test_table_renders(self):
        result = run_fading_sweep(draws=5, seed=0)
        assert "fading" in str(result.table())


class TestPopulationSweep:
    def test_statistics_positive(self):
        result = run_population_sweep(num_vmus=3, draws=8, seed=0)
        assert result.utility_stats.mean > 0.0
        assert len(result.per_draw) == 8

    def test_deterministic(self):
        a = run_population_sweep(num_vmus=3, draws=5, seed=9)
        b = run_population_sweep(num_vmus=3, draws=5, seed=9)
        assert a.per_draw == b.per_draw

    def test_invalid_draws(self):
        with pytest.raises(ValueError):
            run_population_sweep(draws=1)

    def test_table_renders(self):
        result = run_population_sweep(num_vmus=2, draws=4, seed=0)
        assert "random populations" in str(result.table())
