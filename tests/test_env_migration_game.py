"""Environment tests: POMDP structure, Eq.-12 reward, episode lifecycle."""

import numpy as np
import pytest

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.env.migration_game import MigrationGameEnv
from repro.env.wrappers import EpisodeStats, NormalizeObservation, RunningMeanStd
from repro.errors import EnvironmentError_


@pytest.fixture
def market():
    return StackelbergMarket(paper_fig2_population())


def make_env(market, **kwargs):
    defaults = dict(history_length=4, rounds_per_episode=10, seed=0)
    defaults.update(kwargs)
    return MigrationGameEnv(market, **defaults)


class TestObservations:
    def test_observation_dim(self, market):
        env = make_env(market, history_length=4)
        # L * (1 + N) = 4 * 3.
        assert env.observation_dim == 12
        assert env.reset().shape == (12,)

    def test_observation_dim_scales_with_n(self, market):
        from repro.entities.vmu import uniform_population

        env = make_env(market.with_vmus(uniform_population(5)), history_length=2)
        assert env.observation_dim == 2 * 6

    def test_observations_normalised(self, market):
        env = make_env(market)
        obs = env.reset()
        assert np.all(obs >= 0.0)
        assert np.all(obs <= 1.5)  # prices/pmax <= 1, demands/capacity O(1)

    def test_reset_randomises_history(self, market):
        env = make_env(market, seed=1)
        a = env.reset()
        b = env.reset()
        assert not np.array_equal(a, b)

    def test_observation_rolls_forward(self, market):
        env = make_env(market)
        env.reset()
        obs, _, _, _ = env.step(25.0)
        entry_width = 1 + market.num_vmus
        # Newest entry is the price we just posted (normalised).
        assert obs[-entry_width] == pytest.approx(25.0 / 50.0)


class TestRewards:
    def test_first_round_always_rewarded(self, market):
        env = make_env(market, reward_mode="paper")
        env.reset()
        _, reward, _, _ = env.step(20.0)
        assert reward == 1.0  # best starts at -inf

    def test_improvement_rewarded_regression_not(self, market):
        env = make_env(market, reward_mode="paper", reward_tolerance=0.0)
        env.reset()
        eq_price = market.equilibrium().price
        env.step(40.0)  # mediocre
        _, r_improve, _, _ = env.step(eq_price)  # optimal beats it
        _, r_worse, _, _ = env.step(49.0)  # clearly worse than best
        assert r_improve == 1.0
        assert r_worse == 0.0

    def test_tolerance_allows_matching_best(self, market):
        env = make_env(market, reward_mode="paper", reward_tolerance=1e-3)
        env.reset()
        eq_price = market.equilibrium().price
        env.step(eq_price)
        _, reward, _, _ = env.step(eq_price + 1e-4)  # re-attains within tol
        assert reward == 1.0

    def test_utility_mode_scales(self, market):
        env = make_env(market, reward_mode="utility")
        env.reset()
        _, reward, _, info = env.step(25.0)
        scale = (50.0 - 5.0) * market.config.capacity_natural
        assert reward == pytest.approx(info["msp_utility"] / scale)

    def test_best_utility_ratchets(self, market):
        env = make_env(market, reward_mode="paper")
        env.reset()
        env.step(45.0)
        first_best = env.best_utility
        env.step(market.equilibrium().price)
        assert env.best_utility > first_best

    def test_invalid_reward_mode(self, market):
        with pytest.raises(EnvironmentError_):
            make_env(market, reward_mode="bogus")

    def test_negative_tolerance_rejected(self, market):
        with pytest.raises(EnvironmentError_):
            make_env(market, reward_tolerance=-0.1)


class TestEpisodeLifecycle:
    def test_done_at_round_limit(self, market):
        env = make_env(market, rounds_per_episode=3)
        env.reset()
        dones = [env.step(25.0)[2] for _ in range(3)]
        assert dones == [False, False, True]

    def test_step_after_done_rejected(self, market):
        env = make_env(market, rounds_per_episode=1)
        env.reset()
        env.step(25.0)
        with pytest.raises(EnvironmentError_, match="finished"):
            env.step(25.0)

    def test_step_before_reset_rejected(self, market):
        env = make_env(market)
        with pytest.raises(EnvironmentError_, match="reset"):
            env.step(25.0)

    def test_reset_restores(self, market):
        env = make_env(market, rounds_per_episode=1)
        env.reset()
        env.step(25.0)
        env.reset()
        assert env.round_index == 0
        env.step(25.0)  # works again

    def test_action_clamped(self, market):
        env = make_env(market)
        env.reset()
        _, _, _, info = env.step(1000.0)
        assert info["price"] == 50.0
        _, _, _, info = env.step(-3.0)
        assert info["price"] == 5.0

    def test_info_contents(self, market):
        env = make_env(market)
        env.reset()
        _, _, _, info = env.step(25.0)
        assert set(info) >= {
            "price",
            "msp_utility",
            "best_utility",
            "demands",
            "allocations",
            "vmu_utilities",
            "capacity_binding",
            "round",
        }
        outcome = market.round_outcome(25.0)
        assert info["msp_utility"] == pytest.approx(outcome.msp_utility)

    def test_invalid_construction(self, market):
        with pytest.raises(EnvironmentError_):
            make_env(market, history_length=0)
        with pytest.raises(EnvironmentError_):
            make_env(market, rounds_per_episode=0)


class TestRunningMeanStd:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(loc=3.0, scale=2.0, size=(500, 4))
        stats = RunningMeanStd((4,))
        for chunk in np.split(data, 10):
            stats.update(chunk)
        np.testing.assert_allclose(stats.mean, data.mean(axis=0), atol=1e-6)
        np.testing.assert_allclose(stats.var, data.var(axis=0), atol=1e-4)

    def test_single_rows(self):
        stats = RunningMeanStd((2,))
        for value in ([1.0, 2.0], [3.0, 4.0]):
            stats.update(np.array(value))
        np.testing.assert_allclose(stats.mean, [2.0, 3.0], atol=1e-3)

    def test_normalize_clips(self):
        stats = RunningMeanStd((1,))
        stats.update(np.zeros((10, 1)))
        assert abs(stats.normalize(np.array([1e9]), clip=5.0)[0]) <= 5.0


class TestWrappers:
    def test_normalize_observation_passthrough_api(self, market):
        env = NormalizeObservation(make_env(market))
        obs = env.reset()
        assert obs.shape == (env.observation_dim,)
        _, reward, done, info = env.step(25.0)
        assert "msp_utility" in info

    def test_episode_stats_records(self, market):
        env = EpisodeStats(make_env(market, rounds_per_episode=3))
        env.reset()
        done = False
        while not done:
            _, _, done, _ = env.step(25.0)
        assert len(env.episodes) == 1
        record = env.episodes[0]
        assert record.length == 3
        assert record.final_best_utility == pytest.approx(
            market.round_outcome(25.0).msp_utility
        )

    def test_episode_stats_requires_reset(self, market):
        env = EpisodeStats(make_env(market))
        with pytest.raises(EnvironmentError_):
            env.step(25.0)
