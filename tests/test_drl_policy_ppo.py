"""Policy/PPO tests: action scaling, actor-critic wiring, update mechanics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.drl.buffer import MiniBatch, RolloutBuffer
from repro.drl.policy import ActionScaler, ActorCritic
from repro.drl.ppo import PPOAgent, PPOConfig
from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor


class TestActionScaler:
    def test_raw_zero_is_mid_price(self):
        scaler = ActionScaler(low=5.0, high=50.0)
        assert scaler.to_price(0.0) == pytest.approx(27.5)

    def test_raw_one_is_high(self):
        scaler = ActionScaler(low=5.0, high=50.0)
        assert scaler.to_price(1.0) == pytest.approx(50.0)
        assert scaler.to_price(-1.0) == pytest.approx(5.0)

    def test_clipping_beyond_unit(self):
        scaler = ActionScaler(low=5.0, high=50.0)
        assert scaler.to_price(7.0) == 50.0
        assert scaler.to_price(-7.0) == 5.0

    def test_inverse(self):
        scaler = ActionScaler(low=5.0, high=50.0)
        assert scaler.to_raw(27.5) == pytest.approx(0.0)
        assert scaler.to_raw(50.0) == pytest.approx(1.0)

    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_round_trip_inside_range(self, raw):
        scaler = ActionScaler(low=5.0, high=50.0)
        assert scaler.to_raw(scaler.to_price(raw)) == pytest.approx(raw, abs=1e-12)

    @given(st.floats(min_value=-10.0, max_value=10.0))
    def test_price_always_feasible(self, raw):
        scaler = ActionScaler(low=5.0, high=50.0)
        assert 5.0 <= scaler.to_price(raw) <= 50.0

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            ActionScaler(low=5.0, high=5.0)


class TestActorCritic:
    def test_distribution_and_value_shapes(self):
        net = ActorCritic(obs_dim=12, hidden_sizes=(64, 64), seed=0)
        obs = Tensor(np.zeros((7, 12)))
        dist, value = net.evaluate(obs)
        assert dist.mean.shape == (7, 1)
        assert value.shape == (7,)

    def test_wrong_obs_width_rejected(self):
        net = ActorCritic(obs_dim=12, seed=0)
        with pytest.raises(ConfigurationError):
            net.value(Tensor(np.zeros((2, 5))))

    def test_act_deterministic_is_repeatable(self):
        net = ActorCritic(obs_dim=4, seed=0)
        obs = np.ones(4)
        a1, _, _ = net.act(obs, deterministic=True)
        a2, _, _ = net.act(obs, deterministic=True)
        np.testing.assert_array_equal(a1, a2)

    def test_act_stochastic_varies(self):
        net = ActorCritic(obs_dim=4, seed=0)
        obs = np.ones(4)
        a1, _, _ = net.act(obs, seed=1)
        a2, _, _ = net.act(obs, seed=2)
        assert a1[0] != a2[0]

    def test_act_returns_consistent_log_prob(self):
        net = ActorCritic(obs_dim=4, seed=0)
        obs = np.ones(4)
        raw, log_prob, _ = net.act(obs, seed=3)
        dist = net.distribution(Tensor(obs.reshape(1, -1)))
        assert dist.log_prob(raw.reshape(1, -1)).data[0] == pytest.approx(log_prob)

    def test_shared_trunk_feeds_both_heads(self):
        """A gradient step through the value head must move trunk params
        (the paper: policy and value share θ)."""
        net = ActorCritic(obs_dim=4, seed=0)
        value = net.value(Tensor(np.ones((2, 4))))
        value.sum().backward()
        trunk_grads = [p.grad for p in net.trunk.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in trunk_grads)

    def test_log_std_is_trainable(self):
        net = ActorCritic(obs_dim=4, seed=0)
        assert any(p is net.log_std for p in net.parameters())

    def test_initial_policy_near_mid(self):
        # Small actor-head gain: raw mean ~0 at init (mid price after scaling).
        net = ActorCritic(obs_dim=4, seed=0)
        dist = net.distribution(Tensor(np.random.default_rng(0).normal(size=(10, 4))))
        assert np.abs(dist.mean.data).max() < 0.2

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ActorCritic(obs_dim=0)
        with pytest.raises(ConfigurationError):
            ActorCritic(obs_dim=4, hidden_sizes=())


def make_batch(agent: PPOAgent, n=16, seed=0) -> MiniBatch:
    rng = np.random.default_rng(seed)
    buffer = RolloutBuffer(gamma=0.0)
    for _ in range(n):
        obs = rng.normal(size=agent.network.obs_dim)
        raw, log_prob, value = agent.act(obs, seed=rng)
        reward = -float(raw[0] ** 2)  # bandit: prefer raw action 0
        buffer.add(obs, raw, reward, log_prob, value)
    buffer.finalize(0.0)
    return buffer.sample(n, seed=rng)


class TestPPOAgent:
    def test_update_returns_stats(self):
        agent = PPOAgent(ActorCritic(obs_dim=4, seed=0), PPOConfig(learning_rate=1e-3))
        stats = agent.update(make_batch(agent))
        assert np.isfinite(stats.policy_loss)
        assert stats.value_loss >= 0.0
        assert 0.0 <= stats.clip_fraction <= 1.0

    def test_first_update_unclipped(self):
        """On-policy first step: ratio == 1 everywhere, clip fraction 0,
        approx KL ~ 0."""
        agent = PPOAgent(ActorCritic(obs_dim=4, seed=0), PPOConfig(learning_rate=1e-4))
        stats = agent.update(make_batch(agent))
        assert stats.clip_fraction == 0.0
        assert abs(stats.approx_kl) < 1e-9

    def test_update_moves_parameters(self):
        agent = PPOAgent(ActorCritic(obs_dim=4, seed=0), PPOConfig(learning_rate=1e-2))
        before = agent.network.state_dict()
        agent.update(make_batch(agent))
        after = agent.network.state_dict()
        moved = any(
            not np.allclose(before[name], after[name]) for name in before
        )
        assert moved

    def test_bandit_improves(self):
        """PPO on a 1-step bandit (reward = -raw²) shifts the policy mean
        toward 0 and shrinks the loss."""
        agent = PPOAgent(
            ActorCritic(obs_dim=2, seed=1, initial_log_std=0.0),
            PPOConfig(learning_rate=5e-3),
        )
        obs = np.zeros(2)
        def mean_abs_action():
            dist = agent.network.distribution(Tensor(obs.reshape(1, -1)))
            return abs(float(dist.mean.data[0, 0]))
        # Nudge the policy off-centre first so there is something to learn.
        for p in agent.network.actor_head.parameters():
            p.data = p.data + 0.3
        start = mean_abs_action()
        rng = np.random.default_rng(0)
        for _ in range(60):
            buffer = RolloutBuffer(gamma=0.0)
            for _ in range(32):
                raw, log_prob, value = agent.act(obs, seed=rng)
                buffer.add(obs, raw, -float(raw[0] ** 2), log_prob, value)
            buffer.finalize(0.0)
            agent.update(buffer.sample(32, seed=rng))
        assert mean_abs_action() < start

    def test_value_function_learns_constant(self):
        agent = PPOAgent(ActorCritic(obs_dim=2, seed=0), PPOConfig(learning_rate=1e-2))
        obs = np.ones(2)
        rng = np.random.default_rng(0)
        for _ in range(200):
            buffer = RolloutBuffer(gamma=0.0)
            for _ in range(8):
                raw, log_prob, value = agent.act(obs, seed=rng)
                buffer.add(obs, raw, 3.0, log_prob, value)  # constant reward
            buffer.finalize(0.0)
            agent.update(buffer.sample(8, seed=rng))
        assert agent.value(obs) == pytest.approx(3.0, abs=0.5)

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            PPOConfig(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            PPOConfig(clip_epsilon=0.0)
        with pytest.raises(ConfigurationError):
            PPOConfig(value_coef=-1.0)
        with pytest.raises(ConfigurationError):
            PPOConfig(max_grad_norm=0.0)
