"""Bandwidth-planner tests: inversion correctness and monotonicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aotm import bandwidth_for_target_aotm
from repro.channel.link import paper_link
from repro.entities.vt import VehicularTwin, VtPayload
from repro.errors import MigrationError
from repro.migration.planner import (
    plan_bandwidth_for_aotm,
    plan_bandwidth_for_downtime,
)
from repro.migration.session import MigrationSession
from repro.utils.units import megabytes_to_data_units


def make_twin(total_mb=200.0, dirty=0.0) -> VehicularTwin:
    return VehicularTwin(
        vt_id="vt:p",
        vmu_id="p",
        payload=VtPayload.with_total(total_mb),
        dirty_rate_mb_s=dirty,
    )


class TestAotmPlanner:
    def test_meets_target(self):
        plan = plan_bandwidth_for_aotm(make_twin(200.0, dirty=5.0), 0.5)
        assert plan.predicted_aotm_s <= 0.5

    def test_minimal_within_tolerance(self):
        """Slightly less bandwidth must miss the target."""
        session = MigrationSession()
        twin = make_twin(200.0, dirty=5.0)
        plan = plan_bandwidth_for_aotm(twin, 0.5, session=session)
        undershoot = session.migrate(twin, plan.bandwidth * 0.99)
        assert undershoot.measured_aotm_s > 0.5

    def test_zero_dirty_matches_analytic_inverse(self):
        """With no dirty memory the planner inverts Eq. (1) exactly."""
        twin = make_twin(200.0, dirty=0.0)
        target = 0.4
        plan = plan_bandwidth_for_aotm(twin, target)
        analytic = bandwidth_for_target_aotm(
            megabytes_to_data_units(200.0),
            target,
            paper_link().spectral_efficiency,
        )
        assert plan.bandwidth == pytest.approx(analytic, rel=1e-6)

    def test_dirty_memory_needs_more_bandwidth(self):
        clean = plan_bandwidth_for_aotm(make_twin(200.0, 0.0), 0.5)
        dirty = plan_bandwidth_for_aotm(make_twin(200.0, 20.0), 0.5)
        assert dirty.bandwidth > clean.bandwidth

    def test_unreachable_target_raises(self):
        with pytest.raises(MigrationError, match="unreachable"):
            plan_bandwidth_for_aotm(
                make_twin(200.0), 1e-9, max_bandwidth=0.01
            )

    def test_cost_reported(self):
        plan = plan_bandwidth_for_aotm(make_twin(100.0), 0.5, unit_price=25.0)
        assert plan.cost_at_price == pytest.approx(25.0 * plan.bandwidth)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=2.0),
        st.floats(min_value=0.0, max_value=20.0),
    )
    def test_planned_bandwidth_monotone_in_target(self, target, dirty):
        """Tighter deadlines require (weakly) more bandwidth."""
        twin = make_twin(200.0, dirty)
        tight = plan_bandwidth_for_aotm(twin, target)
        loose = plan_bandwidth_for_aotm(twin, target * 2.0)
        assert tight.bandwidth >= loose.bandwidth * (1.0 - 1e-9)


class TestDowntimePlanner:
    def test_meets_target(self):
        plan = plan_bandwidth_for_downtime(make_twin(200.0, dirty=10.0), 0.05)
        assert plan.predicted_downtime_s <= 0.05

    def test_downtime_cheaper_than_aotm_target(self):
        """Meeting a downtime target needs less bandwidth than meeting the
        same total-AoTM target (only the stop-and-copy phase counts)."""
        twin = make_twin(200.0, dirty=10.0)
        by_downtime = plan_bandwidth_for_downtime(twin, 0.2)
        by_aotm = plan_bandwidth_for_aotm(twin, 0.2)
        assert by_downtime.bandwidth < by_aotm.bandwidth

    def test_invalid_target(self):
        with pytest.raises(Exception):
            plan_bandwidth_for_downtime(make_twin(), 0.0)
