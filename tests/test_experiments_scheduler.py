"""Experiment scheduler tests: jobs, hashing, caching, resume, fan-out.

Every test runs under a signal-based watchdog (see ``_watchdog``) so a hung
worker pool fails the test fast instead of stalling the suite — the same
guard the CI job enforces with ``pytest-timeout``.
"""

import json
import multiprocessing
import pathlib
import signal
import time

import pytest

from repro.channel.link import paper_link
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.drl.checkpoints import load_agent
from repro.entities.vmu import paper_fig2_population, sample_population
from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, run_multiseed_comparison
from repro.experiments.fig3_cost import run_fig3_cost
from repro.experiments.fig3_vmus import run_fig3_vmus
from repro.experiments.robustness import (
    run_distance_sweep,
    run_fading_sweep,
    run_population_sweep,
)
from repro.experiments.run import schedule_main
from repro.experiments.scheduler import (
    Job,
    JobScheduler,
    config_from_payload,
    config_to_payload,
    execute_job,
    market_from_payload,
    market_to_payload,
    register_job_kind,
)
from repro.utils.serialization import load_json, save_json

WATCHDOG_SECONDS = 120.0


@pytest.fixture(autouse=True)
def _watchdog():
    """Per-test timeout guard: a hung pool fails fast, not forever."""
    if not hasattr(signal, "SIGALRM"):  # non-POSIX fallback: no guard
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"scheduler test exceeded the {WATCHDOG_SECONDS}s watchdog — "
            "a worker pool is probably hung"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _cell_jobs(markets):
    return [
        Job("equilibrium_cell", {"market": market_to_payload(market)})
        for market in markets
    ]


def _markets(count=3):
    rng_markets = [
        StackelbergMarket(sample_population(3, seed=seed)) for seed in range(count)
    ]
    return rng_markets


class TestJob:
    def test_hash_is_stable_across_key_order(self):
        a = Job("equilibrium_cell", {"x": 1, "y": [1, 2], "z": "s"})
        b = Job("equilibrium_cell", {"z": "s", "y": (1, 2), "x": 1})
        assert a.job_hash() == b.job_hash()

    def test_hash_distinguishes_payloads_and_kinds(self):
        base = Job("equilibrium_cell", {"x": 1})
        assert base.job_hash() != Job("equilibrium_cell", {"x": 2}).job_hash()
        assert base.job_hash() != Job("multiseed_shard", {"x": 1}).job_hash()

    def test_hash_survives_json_round_trip(self):
        market = StackelbergMarket(paper_fig2_population())
        job = _cell_jobs([market])[0]
        round_tripped = Job.from_spec(json.loads(json.dumps(job.spec())))
        assert round_tripped.job_hash() == job.job_hash()

    def test_from_spec_rejects_malformed(self):
        with pytest.raises(ExperimentError):
            Job.from_spec([1, 2])
        with pytest.raises(ExperimentError):
            Job.from_spec({"payload": {}})
        with pytest.raises(ExperimentError):
            Job.from_spec({"kind": "k"})
        with pytest.raises(ExperimentError):
            Job.from_spec({"kind": "k", "payload": "oops"})

    def test_from_spec_rejects_unknown_keys(self):
        """A spec is exactly {kind, payload}: extra keys are junk (a
        tampered or foreign file), never silently dropped — dropping them
        would make two different files hash to the same job."""
        with pytest.raises(ExperimentError, match=r"unknown key \['priority'\]"):
            Job.from_spec({"kind": "k", "payload": {}, "priority": 3})
        with pytest.raises(
            ExperimentError, match=r"unknown keys \['owner', 'priority'\]"
        ):
            Job.from_spec(
                {"kind": "k", "payload": {}, "priority": 3, "owner": "me"}
            )

    def test_unknown_kind_rejected_at_execution(self):
        with pytest.raises(ExperimentError, match="unknown job kind"):
            execute_job(Job("no_such_kind", {}))


class TestPayloadCodecs:
    def test_market_round_trip_is_bitwise(self):
        markets = _markets()
        markets.append(
            StackelbergMarket(
                paper_fig2_population(),
                config=MarketConfig(unit_cost=7.5, enforce_capacity=False),
                link=paper_link().with_distance(1234.5),
            )
        )
        markets.append(
            StackelbergMarket(
                paper_fig2_population(),
                link=paper_link().with_fading_gain(0.731),
            )
        )
        for market in markets:
            rebuilt = market_from_payload(
                json.loads(json.dumps(market_to_payload(market)))
            )
            original = market.equilibrium()
            restored = rebuilt.equilibrium()
            assert restored.price == original.price
            assert restored.msp_utility == original.msp_utility

    def test_market_payload_rejects_malformed(self):
        with pytest.raises(ExperimentError):
            market_from_payload("oops")
        with pytest.raises(ExperimentError):
            market_from_payload({"vmus": []})
        payload = market_to_payload(StackelbergMarket(paper_fig2_population()))
        payload["link"]["path_loss"] = {"model": "martian"}
        with pytest.raises(ExperimentError, match="path-loss"):
            market_from_payload(payload)

    def test_config_round_trip(self):
        config = ExperimentConfig.quick(seed=3).with_num_envs(2)
        rebuilt = config_from_payload(
            json.loads(json.dumps(config_to_payload(config)))
        )
        assert rebuilt == config

    def test_config_payload_rejects_unknown_keys(self):
        with pytest.raises(ExperimentError, match="unknown keys"):
            config_from_payload({"seed": 0, "bogus_knob": 1})


class TestSchedulerRun:
    def test_in_process_cells_match_equilibria(self):
        markets = _markets()
        scheduler = JobScheduler(workers=1)
        results = scheduler.run(_cell_jobs(markets))
        for market, payload in zip(markets, results):
            equilibrium = market.equilibrium()
            assert payload["price"] == equilibrium.price
            assert payload["msp_utility"] == equilibrium.msp_utility
        assert scheduler.jobs_executed == len(markets)
        assert scheduler.cache_hits == 0

    def test_process_pool_matches_in_process(self):
        markets = _markets(4)
        sequential = JobScheduler(workers=1).run(_cell_jobs(markets))
        pooled = JobScheduler(workers=2).run(_cell_jobs(markets))
        assert pooled == sequential

    def test_duplicate_jobs_execute_once(self):
        market = StackelbergMarket(paper_fig2_population())
        jobs = _cell_jobs([market, market, market])
        scheduler = JobScheduler(workers=1)
        results = scheduler.run(jobs)
        assert scheduler.jobs_executed == 1
        assert results[0] == results[1] == results[2]

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ExperimentError):
            JobScheduler(workers=0)
        with pytest.raises(ExperimentError):
            JobScheduler(job_timeout=0.0)

    def test_cache_layout_and_resume_hits_no_worker(self, tmp_path, monkeypatch):
        markets = _markets()
        jobs = _cell_jobs(markets)
        first = JobScheduler(workers=2, cache_dir=tmp_path)
        baseline = first.run(jobs)
        assert first.jobs_executed == len(jobs)
        for job in jobs:
            path = tmp_path / f"{job.job_hash()}.json"
            assert path.exists()
            entry = load_json(path)
            assert entry["job"] == job.spec()
            assert "result" in entry
        # Resume: no job function may run — not in-process, not in a pool.
        monkeypatch.setattr(
            "repro.experiments.scheduler.execute_job",
            lambda job: pytest.fail("resume must not execute jobs"),
        )
        monkeypatch.setattr(
            "repro.experiments.scheduler.execute_spec",
            lambda spec: pytest.fail("resume must not execute jobs"),
        )
        resumed = JobScheduler(workers=2, cache_dir=tmp_path)
        assert resumed.run(jobs) == baseline
        assert resumed.cache_hits == len(jobs)
        assert resumed.jobs_executed == 0
        assert resumed.job_sources == ["cache"] * len(jobs)

    def test_resume_false_re_executes(self, tmp_path):
        jobs = _cell_jobs(_markets(1))
        JobScheduler(workers=1, cache_dir=tmp_path).run(jobs)
        fresh = JobScheduler(workers=1, cache_dir=tmp_path, resume=False)
        fresh.run(jobs)
        assert fresh.jobs_executed == 1
        assert fresh.cache_hits == 0

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        jobs = _cell_jobs(_markets(1))
        scheduler = JobScheduler(workers=1, cache_dir=tmp_path)
        baseline = scheduler.run(jobs)
        path = tmp_path / f"{jobs[0].job_hash()}.json"
        path.write_text('{"job": {"kind": "trunc')  # killed mid-write
        again = JobScheduler(workers=1, cache_dir=tmp_path)
        assert again.run(jobs) == baseline
        assert again.jobs_executed == 1
        assert load_json(path)["result"] == baseline[0]

    def test_foreign_cache_entry_raises(self, tmp_path):
        jobs = _cell_jobs(_markets(1))
        scheduler = JobScheduler(workers=1, cache_dir=tmp_path)
        scheduler.run(jobs)
        path = tmp_path / f"{jobs[0].job_hash()}.json"
        entry = load_json(path)
        entry["job"]["payload"]["market"]["config"]["unit_cost"] = 99.0
        path.write_text(json.dumps(entry))
        with pytest.raises(ExperimentError, match="different job spec"):
            JobScheduler(workers=1, cache_dir=tmp_path).run(jobs)

    def test_mismatch_error_distinguishes_foreign_from_collision(
        self, tmp_path
    ):
        """A wrong spec in a hash-named slot has two explanations — a
        foreign file dropped into the directory, or a genuine SHA-256
        collision — and the error must say which, naming both the found
        and the expected job kinds (the operator's first question)."""
        jobs = _cell_jobs(_markets(1))
        scheduler = JobScheduler(workers=1, cache_dir=tmp_path)
        scheduler.run(jobs)
        path = tmp_path / f"{jobs[0].job_hash()}.json"
        entry = load_json(path)
        # A foreign file: another kind's entry occupying this job's slot.
        entry["job"] = {"kind": "multiseed_shard", "payload": {"seeds": [0]}}
        path.write_text(json.dumps(entry))
        with pytest.raises(ExperimentError) as excinfo:
            JobScheduler(workers=1, cache_dir=tmp_path).run(jobs)
        message = str(excinfo.value)
        assert "found kind 'multiseed_shard'" in message
        assert "expected kind 'equilibrium_cell'" in message
        assert "foreign file" in message
        assert "SHA-256 collision" not in message
        # An unparseable recorded spec is also a foreign file, not a crash
        # inside the error path.
        entry["job"] = {"kind": "equilibrium_cell"}  # no payload: malformed
        path.write_text(json.dumps(entry))
        with pytest.raises(ExperimentError, match="foreign file"):
            JobScheduler(workers=1, cache_dir=tmp_path).run(jobs)

    def test_concurrent_cache_writers_never_clobber(self, tmp_path):
        """Many writers racing on one entry (the at-least-once execution
        story) each use a unique fsync-ed temp name, so the visible entry
        is always one writer's complete output and no temp debris stays."""
        import concurrent.futures

        from repro.experiments.scheduler import (
            read_result_entry,
            write_result_entry,
        )

        job = _cell_jobs(_markets(1))[0]
        result = {"price": 1.25, "msp_utility": 2.5, "capacity_binding": False}
        target = tmp_path / f"{job.job_hash()}.json"
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            list(
                pool.map(
                    lambda _: write_result_entry(target, job, result),
                    range(64),
                )
            )
        assert read_result_entry(target, job) == result
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failing_job_propagates(self):
        # 'market_scheme' with an unknown scheme raises inside the worker.
        market_payload = market_to_payload(
            StackelbergMarket(paper_fig2_population())
        )
        job = Job(
            "market_scheme",
            {
                "scheme": "martian",
                "market": market_payload,
                "config": config_to_payload(ExperimentConfig.smoke()),
            },
        )
        with pytest.raises(ValueError, match="unknown scheme"):
            JobScheduler(workers=1).run([job])


def _sleepy_job(payload):
    time.sleep(float(payload["seconds"]))
    return {"slept": payload["seconds"]}


register_job_kind("test_sleepy", _sleepy_job)


class TestJobTimeout:
    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="test-local job kind reaches workers via fork inheritance",
    )
    def test_hung_pool_fails_fast(self):
        jobs = [
            Job("test_sleepy", {"seconds": 3.0, "tag": tag})
            for tag in ("a", "b")
        ]
        scheduler = JobScheduler(workers=2, job_timeout=0.3)
        start = time.perf_counter()
        with pytest.raises(ExperimentError, match="job_timeout"):
            scheduler.run(jobs)
        assert time.perf_counter() - start < 2.5

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="test-local job kind reaches workers via fork inheritance",
    )
    def test_timeout_guards_single_worker_too(self):
        """job_timeout must not be silently inoperative on the workers=1 /
        single-job shortcut — it forces the pool path."""
        scheduler = JobScheduler(workers=1, job_timeout=0.3)
        start = time.perf_counter()
        with pytest.raises(ExperimentError, match="job_timeout"):
            scheduler.run([Job("test_sleepy", {"seconds": 3.0})])
        assert time.perf_counter() - start < 2.5

    def test_registered_kind_runs_in_process(self):
        result = JobScheduler(workers=1).run(
            [Job("test_sleepy", {"seconds": 0.0})]
        )
        assert result == [{"slept": 0.0}]

    def test_builtin_kind_name_collision_rejected(self):
        with pytest.raises(ExperimentError, match="built in"):
            register_job_kind("equilibrium_cell", _sleepy_job)


class TestScheduledFig3:
    SCHEMES = ("drl", "random", "equilibrium")
    COSTS = (5.0, 7.0)

    def _equal(self, a, b, keys):
        return all(
            vars(a.evaluations[k][scheme]) == vars(b.evaluations[k][scheme])
            for k in keys
            for scheme in self.SCHEMES
        )

    def test_sharded_fig3_cost_equals_sequential_bitwise(self, tmp_path):
        """Acceptance: workers>1 fig3 == sequential fig3, bitwise."""
        config = ExperimentConfig.smoke()
        sequential = run_fig3_cost(
            config, costs=self.COSTS, schemes=self.SCHEMES
        )
        scheduler = JobScheduler(workers=2, cache_dir=tmp_path)
        sharded = run_fig3_cost(
            config, costs=self.COSTS, schemes=self.SCHEMES, scheduler=scheduler
        )
        assert self._equal(sequential, sharded, self.COSTS)

    def test_sharded_fig3_vmus_equals_sequential_bitwise(self):
        config = ExperimentConfig.smoke()
        counts = (1, 3)
        sequential = run_fig3_vmus(config, counts=counts, schemes=self.SCHEMES)
        sharded = run_fig3_vmus(
            config,
            counts=counts,
            schemes=self.SCHEMES,
            scheduler=JobScheduler(workers=2),
        )
        assert self._equal(sequential, sharded, counts)

    def test_killed_run_resumes_from_cache(self, tmp_path):
        """Acceptance: a killed-and-resumed run completes from cache
        without re-running finished jobs."""
        config = ExperimentConfig.smoke()
        scheduler = JobScheduler(workers=1, cache_dir=tmp_path)
        baseline = run_fig3_cost(
            config, costs=self.COSTS, schemes=("drl",), scheduler=scheduler
        )
        cached = sorted(tmp_path.glob("*.json"))
        assert len(cached) == len(self.COSTS)
        # Simulate a run killed after finishing only the first market.
        cached[1].unlink()
        resumed_scheduler = JobScheduler(workers=1, cache_dir=tmp_path)
        resumed = run_fig3_cost(
            config,
            costs=self.COSTS,
            schemes=("drl",),
            scheduler=resumed_scheduler,
        )
        assert resumed_scheduler.cache_hits == 1
        assert resumed_scheduler.jobs_executed == 1
        for cost in self.COSTS:
            assert vars(resumed.evaluations[cost]["drl"]) == vars(
                baseline.evaluations[cost]["drl"]
            )

    def test_cache_is_relocatable(self, tmp_path):
        """Job hashes must not depend on the cache directory: a cache
        written under one path (DRL checkpoint targets included) resumes
        under any other — the cross-machine cache-sharing contract."""
        import shutil

        config = ExperimentConfig.smoke()
        first_dir = tmp_path / "first"
        baseline = run_fig3_cost(
            config,
            costs=self.COSTS,
            schemes=("drl",),
            scheduler=JobScheduler(workers=1, cache_dir=first_dir),
        )
        moved_dir = tmp_path / "elsewhere" / "moved"
        moved_dir.parent.mkdir()
        shutil.move(first_dir, moved_dir)
        relocated = JobScheduler(workers=1, cache_dir=moved_dir)
        resumed = run_fig3_cost(
            config, costs=self.COSTS, schemes=("drl",), scheduler=relocated
        )
        assert relocated.jobs_executed == 0
        assert relocated.cache_hits == len(self.COSTS)
        for cost in self.COSTS:
            assert vars(resumed.evaluations[cost]["drl"]) == vars(
                baseline.evaluations[cost]["drl"]
            )

    def test_drl_checkpoints_handed_home(self, tmp_path):
        """Each per-market DRL job parks its trained agent in the cache's
        checkpoints/ dir, loadable (and then deletable) via load_agent;
        cached results record the cache-*relative* path so a shared or
        moved cache still resolves."""
        config = ExperimentConfig.smoke()
        scheduler = JobScheduler(workers=1, cache_dir=tmp_path)
        run_fig3_cost(
            config, costs=self.COSTS, schemes=("drl",), scheduler=scheduler
        )
        checkpoints = sorted((tmp_path / "checkpoints").glob("*.npz"))
        assert len(checkpoints) == len(self.COSTS)
        for entry_path in tmp_path.glob("*.json"):
            recorded = load_json(entry_path)["result"]["checkpoint"]
            assert not pathlib.PurePath(recorded).is_absolute()
            assert (tmp_path / recorded).exists()
        for checkpoint in checkpoints:
            agent, scaler, meta = load_agent(checkpoint)
            assert meta["history_length"] == config.history_length
            assert scaler.high > scaler.low
            checkpoint.unlink()  # the handle was closed: deletable


class TestScheduledSweeps:
    def test_distance_sweep_matches_stacked(self):
        stacked = run_distance_sweep()
        scheduled = run_distance_sweep(scheduler=JobScheduler(workers=2))
        assert scheduled.prices == stacked.prices
        assert scheduled.msp_utilities == stacked.msp_utilities

    def test_fading_sweep_matches_stacked(self):
        stacked = run_fading_sweep(draws=8, seed=1)
        scheduled = run_fading_sweep(
            draws=8, seed=1, scheduler=JobScheduler(workers=2)
        )
        assert scheduled.prices == stacked.prices
        assert scheduled.utilities == stacked.utilities

    def test_population_sweep_matches_stacked(self):
        stacked = run_population_sweep(draws=5, seed=2)
        scheduled = run_population_sweep(
            draws=5, seed=2, scheduler=JobScheduler(workers=2)
        )
        assert scheduled.per_draw == stacked.per_draw

    def test_multiseed_resumes_through_scheduler_cache(self, tmp_path):
        market = StackelbergMarket(paper_fig2_population())
        config = ExperimentConfig.smoke()
        kwargs = dict(seeds=(0, 1, 2, 3), schemes=("random", "equilibrium"))
        sequential = run_multiseed_comparison(market, config, **kwargs)
        scheduler = JobScheduler(workers=2, cache_dir=tmp_path)
        sharded = run_multiseed_comparison(
            market, config, shards=2, scheduler=scheduler, **kwargs
        )
        assert sharded == sequential
        assert scheduler.jobs_executed == 2
        resumed_scheduler = JobScheduler(workers=2, cache_dir=tmp_path)
        resumed = run_multiseed_comparison(
            market, config, shards=2, scheduler=resumed_scheduler, **kwargs
        )
        assert resumed == sequential
        assert resumed_scheduler.jobs_executed == 0
        assert resumed_scheduler.cache_hits == 2


class TestScheduleCli:
    def _jobs_file(self, tmp_path):
        markets = _markets(2)
        specs = [job.spec() for job in _cell_jobs(markets)]
        return save_json(tmp_path / "jobs.json", specs), markets

    def test_schedule_runs_jobs_file(self, tmp_path, capsys):
        jobs_file, markets = self._jobs_file(tmp_path)
        code = schedule_main(
            [
                "--jobs", str(jobs_file),
                "--workers", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(tmp_path / "out"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 job(s): 2 executed, 0 from cache" in out
        results = load_json(tmp_path / "out" / "schedule.json")
        for market, entry in zip(markets, results):
            assert entry["result"]["price"] == market.equilibrium().price

    def test_schedule_resumes_from_cache(self, tmp_path, capsys):
        jobs_file, _ = self._jobs_file(tmp_path)
        argv = [
            "--jobs", str(jobs_file),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert schedule_main(argv) == 0
        capsys.readouterr()
        assert schedule_main(argv) == 0
        out = capsys.readouterr().out
        assert "2 job(s): 0 executed, 2 from cache" in out
        assert out.count("cache") >= 2

    def test_schedule_rejects_bad_inputs(self, tmp_path):
        jobs_file = save_json(tmp_path / "jobs.json", {"kind": "x"})
        with pytest.raises(SystemExit):
            schedule_main(["--jobs", str(jobs_file)])
        good = save_json(tmp_path / "good.json", [])
        with pytest.raises(SystemExit):
            schedule_main(["--jobs", str(good), "--workers", "0"])

    def test_schedule_rejects_malformed_json(self, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text('[{"kind": "trunc')
        with pytest.raises(SystemExit):  # clean CLI error, not a traceback
            schedule_main(["--jobs", str(broken)])

    def test_schedule_rejects_malformed_spec_entries(self, tmp_path):
        bad_entries = save_json(
            tmp_path / "bad.json",
            [{"kind": "equilibrium_cell", "payload": "oops"}],
        )
        with pytest.raises(SystemExit):  # clean CLI error, not a traceback
            schedule_main(["--jobs", str(bad_entries)])

    def test_scheduler_flags_apply_to_every_figure(self, tmp_path, capsys):
        """Since the spec registry landed, --workers/--cache-dir route
        *every* figure through the scheduler — welfare (one
        welfare_report job) included — instead of erroring out."""
        from repro.experiments.run import main

        assert main(["--figure", "welfare", "--workers", "2"]) == 0
        assert "deadweight" in capsys.readouterr().out
        assert (
            main(["--figure", "welfare", "--cache-dir", str(tmp_path)]) == 0
        )
        assert len(list(tmp_path.glob("*.json"))) == 1
