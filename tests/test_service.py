"""repro.service: the live pricing service and the content-keyed cache."""

import numpy as np
import pytest
from test_core_equilibria_stacked import infeasible_market, random_markets

from repro.baselines import OraclePricing
from repro.core import MarketStack, MutableMarketStack
from repro.entities.vmu import VmuProfile
from repro.errors import ConfigurationError, InfeasibleMarketError
from repro.experiments import run_distance_sweep, run_fading_sweep
from repro.service import (
    EquilibriumCache,
    FadingDrift,
    LivePricingService,
    PriceQuote,
    Query,
    ServiceStats,
    UpdateMarket,
    VmuJoin,
    VmuLeave,
    latency_percentile,
)


class TestLatencyPercentile:
    def test_nearest_rank(self):
        sample = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert latency_percentile(sample, 50.0) == 3.0
        assert latency_percentile(sample, 99.0) == 5.0
        assert latency_percentile(sample, 0.0) == 1.0
        assert latency_percentile(sample, 100.0) == 5.0

    def test_empty_sample(self):
        assert latency_percentile([], 99.0) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            latency_percentile([1.0], 101.0)


class TestLivePricingService:
    def test_query_matches_cold_solve(self):
        markets = random_markets(8, root_seed=3)
        service = LivePricingService(markets)
        cold = MarketStack(markets).equilibria_stacked()
        quote = service.query(5)
        assert quote.feasible
        assert quote.price == cold.prices[5]
        assert quote.msp_utility == cold.msp_utilities[5]

    def test_serve_interleaved_updates_and_queries(self):
        markets = random_markets(6, root_seed=9)
        service = LivePricingService(markets)
        events = [
            Query(0),
            FadingDrift(2, 0.5),
            Query(2),
            VmuJoin(1, VmuProfile("new", data_size_mb=150.0, immersion_coef=4.0)),
            Query(1),
            Query(2),
        ]
        quotes = service.serve(events)
        assert [q.market_index for q in quotes] == [0, 2, 1, 2]
        cold = MarketStack(list(service.stack.markets)).equilibria_stacked()
        assert quotes[-1].price == cold.prices[2]
        stats = service.stats()
        assert stats.queries == 4
        assert stats.updates == 2
        # 1 cold solve + 1 per dirty window = 3; never 1 solve per query.
        assert stats.solves == 3
        assert stats.rows_resolved == 6 + 1 + 1

    def test_micro_window_batches_queries_onto_one_solve(self):
        service = LivePricingService(random_markets(5, root_seed=13))
        service.serve([Query(i % 5) for i in range(20)])
        assert service.stack.solve_count == 1

    def test_infeasible_market_quotes_nan_without_raising(self):
        markets = random_markets(3, root_seed=7)
        markets[1] = infeasible_market()
        service = LivePricingService(markets)
        quote = service.query(1)
        assert not quote.feasible
        assert np.isnan(quote.price) and np.isnan(quote.msp_utility)
        assert not quote.capacity_binding and not quote.price_cap_binding

    def test_leave_event(self):
        markets = random_markets(4, root_seed=15)
        victim = markets[2].vmus[0].vmu_id
        service = LivePricingService(markets)
        service.query(2)
        service.apply(VmuLeave(2, victim))
        assert len(service.stack.market(2).vmus) == len(markets[2].vmus) - 1
        cold = MarketStack(list(service.stack.markets)).equilibria_stacked()
        assert service.query(2).price == cold.prices[2]

    def test_update_market_event(self):
        service = LivePricingService(random_markets(4, root_seed=19))
        replacement = random_markets(1, root_seed=77)[0]
        service.apply(UpdateMarket(0, replacement))
        assert service.stack.market(0) is replacement

    def test_unknown_event_rejected(self):
        service = LivePricingService(random_markets(2, root_seed=1))
        with pytest.raises(ConfigurationError, match="unknown service event"):
            service.apply(object())

    def test_stats_and_reset(self):
        service = LivePricingService(random_markets(3, root_seed=21))
        service.serve([Query(0), FadingDrift(1, 0.9), Query(1)])
        stats = service.stats()
        assert isinstance(stats, ServiceStats)
        assert stats.queries == 2 and stats.updates == 1
        assert stats.p99_ms >= stats.p50_ms >= 0.0
        assert stats.qps > 0.0
        service.reset_stats()
        fresh = service.stats()
        assert fresh.queries == 0 and fresh.updates == 0
        assert fresh.solves == stats.solves  # stack counters persist

    def test_accepts_existing_mutable_stack(self):
        mutable = MutableMarketStack(random_markets(3, root_seed=23))
        service = LivePricingService(mutable)
        assert service.stack is mutable
        assert service.num_markets == 3

    def test_refine_false_mode(self):
        markets = random_markets(4, root_seed=25)
        service = LivePricingService(markets, refine=False)
        cold = MarketStack(markets).equilibria_stacked(refine=False)
        assert service.query(2).price == cold.prices[2]


class TestEquilibriumCache:
    def test_rows_bitwise_equal_stacked_solve(self):
        markets = random_markets(6, root_seed=33)
        cache = EquilibriumCache()
        rows = cache.equilibria(markets)
        solved = MarketStack(markets).equilibria_stacked()
        for m, row in enumerate(rows):
            assert row.price == solved.prices[m]
            assert (row.demands == solved.equilibrium(m).demands).all()

    def test_hits_and_misses_across_overlapping_stacks(self):
        markets = random_markets(6, root_seed=35)
        cache = EquilibriumCache()
        cache.equilibria(markets[:4])
        assert cache.misses == 4 and cache.hits == 0
        rows = cache.equilibria(markets[2:])  # 2 cached + 2 new
        assert cache.misses == 6 and cache.hits == 2
        assert len(cache) == 6
        solved = MarketStack(markets).equilibria_stacked()
        for row, m in zip(rows, range(2, 6)):
            assert row.price == solved.prices[m]

    def test_repeat_lookup_is_identical_object(self):
        market = random_markets(1, root_seed=37)[0]
        cache = EquilibriumCache()
        assert cache.equilibrium(market) is cache.equilibrium(market)
        assert cache.hits == 1 and cache.misses == 1

    def test_equal_content_shares_a_row(self):
        market = random_markets(1, root_seed=39)[0]
        twin = market.with_unit_cost(market.config.unit_cost)
        cache = EquilibriumCache()
        assert cache.equilibrium(market) is cache.equilibrium(twin)

    def test_infeasible_cached_and_reraised(self):
        cache = EquilibriumCache()
        bad = infeasible_market()
        with pytest.raises(InfeasibleMarketError, match="no profitable trade"):
            cache.equilibrium(bad)
        with pytest.raises(InfeasibleMarketError):
            cache.equilibrium(bad)
        assert cache.misses == 1 and cache.hits == 1  # negative row reused

    def test_invalidate_forces_resolve(self):
        market = random_markets(1, root_seed=41)[0]
        cache = EquilibriumCache()
        first = cache.equilibrium(market)
        assert cache.invalidate(market)
        assert not cache.invalidate(market)  # already gone
        second = cache.equilibrium(market)
        assert second is not first
        assert second.price == first.price  # same bits, fresh solve
        assert cache.misses == 2

    def test_clear_resets_counters(self):
        cache = EquilibriumCache()
        cache.equilibria(random_markets(3, root_seed=43))
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_chunked_solve_same_bits(self):
        markets = random_markets(7, root_seed=45)
        chunked = EquilibriumCache()
        plain = EquilibriumCache()
        for a, b in zip(
            chunked.equilibria(markets, chunk_size=2),
            plain.equilibria(markets),
        ):
            assert a.price == b.price


class TestCacheRoutedCallers:
    def test_oracle_from_stack_with_cache_same_bits(self):
        markets = random_markets(6, root_seed=47)
        cache = EquilibriumCache()
        cached = OraclePricing.from_stack(markets, cache=cache)
        direct = OraclePricing.from_stack(markets)
        for a, b in zip(cached, direct):
            assert a.equilibrium_price == b.equilibrium_price
        # The rebuild after one change re-solves only that cell.
        markets[3] = random_markets(1, root_seed=48)[0]
        OraclePricing.from_stack(markets, cache=cache)
        assert cache.misses == 7

    def test_robustness_sweeps_reuse_cache_same_bits(self):
        base = run_distance_sweep(distances_m=(400.0, 800.0))
        cached = run_distance_sweep(
            distances_m=(400.0, 800.0), reuse_cache=True
        )
        rerun = run_distance_sweep(
            distances_m=(400.0, 800.0), reuse_cache=True
        )
        assert cached == base
        assert rerun == base

    def test_fading_sweep_reuse_cache_same_bits(self):
        base = run_fading_sweep(draws=3)
        assert run_fading_sweep(draws=3, reuse_cache=True) == base
