"""CLI smoke tests: `list`, `describe` for every registered experiment,
and one tiny `run fig2` end-to-end (fan-out flags + cache resume).

This is the CI smoke job (run under pytest-timeout): it pins that the
generic spec-driven CLI stays wired — every experiment is listable,
describable, and runnable with the shared --workers/--cache-dir/--resume
flags.
"""

import json

import pytest

from repro.experiments.api import experiment_names, get_experiment
from repro.experiments.run import main


class TestListAndDescribe:
    def test_list_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_names():
            assert name in out

    @pytest.mark.parametrize("name", experiment_names())
    def test_describe_prints_schema(self, name, capsys):
        assert main(["describe", name]) == 0
        out = capsys.readouterr().out
        assert name in out
        spec = get_experiment(name)
        assert spec.result_type.__name__ in out
        for param in spec.params:
            assert param.name in out

    def test_describe_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["describe", "fig9"])
        assert "unknown experiment" in capsys.readouterr().err


class TestRunEndToEnd:
    def test_tiny_fig2_run_with_cache_resume(self, tmp_path, capsys):
        argv = [
            "run", "fig2",
            "--param", "episodes=2",
            "--workers", "1",
            "--resume",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(tmp_path / "out"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "1 job(s) executed, 0 from cache" in out
        payload = json.loads((tmp_path / "out" / "fig2.json").read_text())
        result = get_experiment("fig2").result_from_payload(payload)
        assert len(result.episode_returns) == 2
        # Rerun: the training must come back from the cache, not retrain,
        # and assemble the identical result.
        assert main(argv) == 0
        resumed_out = capsys.readouterr().out
        assert "0 job(s) executed, 1 from cache" in resumed_out
        resumed = get_experiment("fig2").result_from_payload(
            json.loads((tmp_path / "out" / "fig2.json").read_text())
        )
        assert resumed == result

    def test_cheap_sweep_runs_without_scheduler_flags(self, capsys):
        assert main(
            ["run", "distance_sweep", "--param", "distances_m=500,1000"]
        ) == 0
        assert "RSU separation" in capsys.readouterr().out

    def test_run_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig9"])
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_rejects_unknown_param(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--param", "episodess=2"])
        err = capsys.readouterr().err
        assert "episodess" in err

    def test_run_rejects_malformed_param(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--param", "episodes"])
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_run_rejects_bad_workers(self):
        with pytest.raises(SystemExit):
            main(["run", "welfare", "--workers", "0"])

    def test_run_domain_validation_is_clean_cli_error(self, capsys):
        """Spec-level ValueErrors (bad draws/shards/schemes) must exit as
        parser errors on the generic path, not raw tracebacks."""
        with pytest.raises(SystemExit):
            main(["run", "fading_sweep", "--param", "draws=1"])
        assert "draws" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["run", "multiseed", "--param", "shards=0"])
        assert "shards" in capsys.readouterr().err
