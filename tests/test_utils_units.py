"""Unit-conversion tests: exact anchors, round-trips, and error paths."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnitError
from repro.utils import units


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == 1.0

    def test_minus_20_db(self):
        assert units.db_to_linear(-20.0) == pytest.approx(0.01)

    def test_plus_30_db(self):
        assert units.db_to_linear(30.0) == pytest.approx(1000.0)

    def test_linear_to_db_anchor(self):
        assert units.linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(UnitError):
            units.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(UnitError):
            units.linear_to_db(-3.0)

    @given(st.floats(min_value=-200.0, max_value=200.0))
    def test_db_round_trip(self, value_db):
        assert units.linear_to_db(units.db_to_linear(value_db)) == pytest.approx(
            value_db, abs=1e-9
        )


class TestDbmConversions:
    def test_paper_transmit_power(self):
        # ρ = 40 dBm = 10 W (paper Sec. V-A).
        assert units.dbm_to_watts(40.0) == pytest.approx(10.0)

    def test_paper_noise_power(self):
        # N0 = -150 dBm = 1e-18 W.
        assert units.dbm_to_watts(-150.0) == pytest.approx(1e-18)

    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_milliwatts(0.0) == pytest.approx(1.0)

    def test_watts_to_dbm_anchor(self):
        assert units.watts_to_dbm(1.0) == pytest.approx(30.0)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(UnitError):
            units.watts_to_dbm(0.0)

    def test_milliwatts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(UnitError):
            units.milliwatts_to_dbm(-1.0)

    @given(st.floats(min_value=-120.0, max_value=80.0))
    def test_dbm_round_trip(self, value_dbm):
        assert units.watts_to_dbm(units.dbm_to_watts(value_dbm)) == pytest.approx(
            value_dbm, abs=1e-9
        )


class TestDataConversions:
    def test_megabytes_to_megabits(self):
        assert units.megabytes_to_megabits(100.0) == 800.0

    def test_megabits_to_megabytes(self):
        assert units.megabits_to_megabytes(800.0) == 100.0

    def test_negative_data_rejected(self):
        with pytest.raises(UnitError):
            units.megabytes_to_megabits(-1.0)
        with pytest.raises(UnitError):
            units.megabits_to_megabytes(-1.0)

    def test_paper_data_units(self):
        # The calibration of DESIGN.md §3: 200 MB -> 2.0 units.
        assert units.megabytes_to_data_units(200.0) == 2.0
        assert units.megabytes_to_data_units(100.0) == 1.0

    def test_data_units_inverse(self):
        assert units.data_units_to_megabytes(2.5) == 250.0

    def test_custom_unit(self):
        assert units.megabytes_to_data_units(300.0, unit_mb=50.0) == 6.0

    def test_bad_unit_rejected(self):
        with pytest.raises(UnitError):
            units.megabytes_to_data_units(10.0, unit_mb=0.0)
        with pytest.raises(UnitError):
            units.data_units_to_megabytes(10.0, unit_mb=-1.0)

    def test_negative_units_rejected(self):
        with pytest.raises(UnitError):
            units.data_units_to_megabytes(-0.5)

    @given(st.floats(min_value=0.0, max_value=1e9))
    def test_data_round_trip(self, size_mb):
        through = units.data_units_to_megabytes(
            units.megabytes_to_data_units(size_mb)
        )
        assert through == pytest.approx(size_mb, rel=1e-12)

    @given(st.floats(min_value=0.0, max_value=1e9))
    def test_bits_round_trip(self, size_mb):
        through = units.megabits_to_megabytes(units.megabytes_to_megabits(size_mb))
        assert through == pytest.approx(size_mb, rel=1e-12)


class TestBandwidthConversions:
    def test_mhz_to_hz(self):
        assert units.mhz_to_hz(1.0) == 1e6

    def test_hz_to_mhz(self):
        assert units.hz_to_mhz(5e6) == 5.0

    def test_negative_rejected(self):
        with pytest.raises(UnitError):
            units.mhz_to_hz(-1.0)
        with pytest.raises(UnitError):
            units.hz_to_mhz(-1.0)

    def test_snr_composition_matches_paper(self):
        """ρ h0 d^-ε / N0 with the paper's parameters is ~4e11 (116 dB)."""
        snr = (
            units.dbm_to_watts(40.0)
            * units.db_to_linear(-20.0)
            * 500.0**-2.0
            / units.dbm_to_watts(-150.0)
        )
        assert snr == pytest.approx(4e11, rel=1e-9)
        assert math.log2(1.0 + snr) == pytest.approx(38.54, abs=0.01)
