"""Cross-module integration tests.

These exercise the library the way the paper's evaluation does: train the
DRL mechanism under incomplete information and check it reaches the
complete-information equilibrium; verify no player can deviate profitably;
run the full mobility -> pricing -> migration pipeline.

The DRL test uses a reduced-but-real budget (~10 s), so it asserts actual
learning quality, not just plumbing.
"""

import numpy as np
import pytest

from repro.baselines import OraclePricing, RandomPricing
from repro.core.mechanism import run_rounds
from repro.core.stackelberg import StackelbergMarket
from repro.core.utilities import vmu_utility
from repro.entities.registry import World
from repro.entities.vmu import VmuProfile, paper_fig2_population
from repro.experiments import ExperimentConfig, evaluate_policy, train_drl
from repro.game.analysis import verify_best_response
from repro.migration.pipeline import run_migration_pipeline
from repro.mobility.models import RouteFollower
from repro.mobility.road import straight_highway
from repro.mobility.trace import deploy_rsus_along_highway, simulate_handovers


@pytest.fixture(scope="module")
def market():
    return StackelbergMarket(paper_fig2_population())


@pytest.fixture(scope="module")
def trained(market):
    config = ExperimentConfig(
        num_episodes=80,
        rounds_per_episode=40,
        learning_rate=1e-3,
        gamma=0.0,
        reward_mode="utility",
        evaluation_rounds=40,
        seed=0,
    )
    return train_drl(market, config), config


class TestDrlReachesEquilibrium:
    def test_converged_utility_near_equilibrium(self, market, trained):
        """Fig. 2(b)'s claim: incomplete-information DRL ~= complete-
        information Stackelberg."""
        (result, config) = trained
        equilibrium = market.equilibrium()
        evaluation = evaluate_policy(
            market, result.policy, rounds=config.evaluation_rounds
        )
        gap = abs(evaluation.mean_msp_utility - equilibrium.msp_utility)
        assert gap / equilibrium.msp_utility < 0.05

    def test_learned_price_near_equilibrium_price(self, market, trained):
        (result, config) = trained
        equilibrium = market.equilibrium()
        evaluation = evaluate_policy(market, result.policy, rounds=20)
        assert evaluation.mean_price == pytest.approx(
            equilibrium.price, abs=3.0
        )

    def test_drl_beats_random_mean_utility(self, market, trained):
        """Fig. 3(a)'s ordering: proposed > random baseline."""
        (result, config) = trained
        drl = evaluate_policy(market, result.policy, rounds=50)
        random_ = evaluate_policy(
            market, RandomPricing(5.0, 50.0, seed=123), rounds=50
        )
        assert drl.mean_msp_utility > random_.mean_msp_utility

    def test_training_improves_over_time(self, market, trained):
        (result, config) = trained
        utilities = result.training.episode_mean_utilities
        first = np.mean(utilities[:10])
        last = np.mean(utilities[-10:])
        assert last > first


class TestEquilibriumIsNash:
    def test_no_follower_deviation(self, market):
        """At the computed equilibrium, every VMU's bandwidth is its grid
        argmax — Definition 1's second condition."""
        eq = market.equilibrium()
        se = market.spectral_efficiency
        for vmu, bandwidth in zip(market.vmus, eq.demands):
            def utility(b, vmu=vmu):
                return vmu_utility(
                    vmu.immersion_coef, vmu.data_units, b, eq.price, se
                )

            assert verify_best_response(
                utility, float(bandwidth), 0.0, 1.0, tolerance=1e-7
            )

    def test_no_leader_deviation(self, market):
        """First condition: no price beats p* given follower best response."""
        eq = market.equilibrium()
        for price in np.linspace(5.0, 50.0, 200):
            assert market.msp_utility(float(price)) <= eq.msp_utility * (
                1.0 + 1e-9
            )

    def test_oracle_policy_realises_equilibrium(self, market):
        _, outcomes = run_rounds(market, OraclePricing(market), 3)
        eq = market.equilibrium()
        np.testing.assert_allclose(outcomes[0].allocations, eq.demands)


class TestEndToEndPipeline:
    def test_highway_scenario(self):
        network = straight_highway(4000.0, num_junctions=9, speed_limit_mps=25.0)
        rsus = deploy_rsus_along_highway(
            4000.0, spacing_m=1000.0, coverage_radius_m=700.0
        )
        vmus = [
            VmuProfile("car-0", 200.0, 5.0),
            VmuProfile("car-1", 100.0, 5.0),
        ]
        world = World()
        for rsu in rsus:
            world.add_rsu(rsu)
        for vmu in vmus:
            world.add_vmu(vmu, host_rsu_id="rsu-0", dirty_rate_mb_s=1.0)
        route = [f"j{k}" for k in range(9)]
        agents = [
            RouteFollower(vmu.vmu_id, network, route, speed_factor=1.0 - 0.2 * i)
            for i, vmu in enumerate(vmus)
        ]
        simulation = simulate_handovers(agents, rsus, duration_s=250.0)
        assert len(simulation.migrations) >= 4

        market = StackelbergMarket(vmus)
        result = run_migration_pipeline(
            world, market, OraclePricing(market), simulation.events
        )
        assert len(result.completed) == len(simulation.migrations)
        assert result.total_msp_profit > 0.0
        # every measured AoTM respects the analytic Eq. (1) lower bound
        for step in result.completed:
            assert (
                step.report.measured_aotm_s
                >= step.report.analytic_aotm_s - 1e-12
            )
        world.check_invariants()

    def test_twins_end_on_final_rsu(self):
        network = straight_highway(3000.0, num_junctions=7, speed_limit_mps=30.0)
        rsus = deploy_rsus_along_highway(
            3000.0, spacing_m=1000.0, coverage_radius_m=700.0
        )
        vmus = [VmuProfile("car-0", 100.0, 5.0)]
        world = World()
        for rsu in rsus:
            world.add_rsu(rsu)
        world.add_vmu(vmus[0], host_rsu_id="rsu-0")
        agents = [RouteFollower("car-0", network, [f"j{k}" for k in range(7)])]
        simulation = simulate_handovers(agents, rsus, duration_s=150.0)
        market = StackelbergMarket(vmus)
        run_migration_pipeline(
            world, market, OraclePricing(market), simulation.events
        )
        # the vehicle drove the full road: its twin should sit on the last RSU
        assert world.twin_of("car-0").host_rsu_id == "rsu-3"
