"""Extended-metric tests: AoI family and alternative immersion shapes."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.fading import NoFading, RayleighFading
from repro.core.metrics import (
    LogImmersion,
    SigmoidImmersion,
    average_aoi,
    deadline_violation_probability,
    peak_aoi,
)
from repro.core.immersion import immersion_from_bandwidth
from repro.channel.link import paper_link

SE = paper_link().spectral_efficiency


class TestAverageAoi:
    def test_zero_migration_is_classic_sawtooth(self):
        assert average_aoi(2.0, 0.0) == pytest.approx(1.0)

    def test_migration_adds_age(self):
        assert average_aoi(2.0, 0.5) > average_aoi(2.0, 0.0)

    def test_formula(self):
        # period/2 + A + A^2/(2 period).
        assert average_aoi(4.0, 1.0) == pytest.approx(2.0 + 1.0 + 0.125)

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.0, max_value=10.0),
    )
    def test_monotone_in_aotm(self, period, aotm):
        assert average_aoi(period, aotm + 0.1) > average_aoi(period, aotm)

    def test_invalid(self):
        with pytest.raises(Exception):
            average_aoi(0.0, 1.0)
        with pytest.raises(Exception):
            average_aoi(1.0, -1.0)


class TestPeakAoi:
    def test_formula(self):
        assert peak_aoi(2.0, 0.5) == 2.5

    def test_bounds_average(self):
        # peak age always exceeds the time-average age
        assert peak_aoi(2.0, 0.5) > average_aoi(2.0, 0.5)


class TestDeadlineViolation:
    def test_deterministic_channel_binary(self):
        # Feasible deadline -> probability 0; infeasible -> 1.
        generous = deadline_violation_probability(
            1.0, 0.5, deadline=10.0, fading=NoFading(), samples=100, seed=0
        )
        impossible = deadline_violation_probability(
            1.0, 0.001, deadline=0.001, fading=NoFading(), samples=100, seed=0
        )
        assert generous == 0.0
        assert impossible == 1.0

    def test_fading_gives_intermediate_probability(self):
        # Pick the deadline at the no-fading AoTM: roughly median outcome.
        bandwidth = 0.5
        nominal = 1.0 / (bandwidth * SE)
        p = deadline_violation_probability(
            1.0,
            bandwidth,
            deadline=nominal,
            fading=RayleighFading(),
            samples=20_000,
            seed=0,
        )
        assert 0.05 < p < 0.95

    def test_more_bandwidth_lowers_risk(self):
        kwargs = dict(
            deadline=0.06, fading=RayleighFading(), samples=20_000, seed=0
        )
        risky = deadline_violation_probability(1.0, 0.4, **kwargs)
        safe = deadline_violation_probability(1.0, 1.2, **kwargs)
        assert safe < risky

    def test_deterministic_given_seed(self):
        kwargs = dict(deadline=0.05, fading=RayleighFading(), samples=500)
        assert deadline_violation_probability(
            1.0, 0.5, seed=7, **kwargs
        ) == deadline_violation_probability(1.0, 0.5, seed=7, **kwargs)


class TestImmersionModels:
    def test_log_matches_core_function(self):
        model = LogImmersion()
        assert model.from_bandwidth(5.0, 2.0, 0.5, SE) == pytest.approx(
            immersion_from_bandwidth(5.0, 2.0, 0.5, SE)
        )

    def test_zero_bandwidth_zero_immersion(self):
        for model in (LogImmersion(), SigmoidImmersion()):
            assert model.from_bandwidth(5.0, 2.0, 0.0, SE) == 0.0

    def test_sigmoid_threshold_behaviour(self):
        model = SigmoidImmersion(midpoint=0.5, steepness=0.05)
        fresh = model.immersion(5.0, 0.1)   # well inside the deadline
        stale = model.immersion(5.0, 1.0)   # well past it
        assert fresh > 0.9 * 5.0
        assert stale < 0.1 * 5.0

    def test_sigmoid_midpoint_half_value(self):
        model = SigmoidImmersion(midpoint=0.5, steepness=0.1)
        assert model.immersion(8.0, 0.5) == pytest.approx(4.0)

    def test_both_monotone_decreasing_in_aotm(self):
        for model in (LogImmersion(), SigmoidImmersion()):
            values = [model.immersion(5.0, a) for a in (0.1, 0.5, 2.0)]
            assert values[0] > values[1] > values[2]

    def test_sigmoid_validation(self):
        with pytest.raises(Exception):
            SigmoidImmersion(midpoint=0.0)
        with pytest.raises(Exception):
            SigmoidImmersion(steepness=-1.0)
