"""Experiment-harness tests: configs, runners, per-figure structure.

DRL runs here use the smoke budget: these tests check plumbing and table
structure. Quality (equilibrium convergence, scheme ordering) is covered
by the integration test and the benchmarks.
"""

import pytest

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    compare_schemes,
    compare_schemes_stacked,
    evaluate_policy,
    run_fig2,
    run_fig3_cost,
    run_fig3_vmus,
    run_history_ablation,
    run_reward_ablation,
    train_drl,
    train_drl_fleet,
)
from repro.baselines import OraclePricing
from repro.experiments.run import FIGURES, main


@pytest.fixture
def market():
    return StackelbergMarket(paper_fig2_population())


SMOKE = ExperimentConfig.smoke()


class TestExperimentConfig:
    def test_paper_preset_matches_constants(self):
        config = ExperimentConfig.paper()
        assert config.num_episodes == 500
        assert config.rounds_per_episode == 100
        assert config.learning_rate == 1e-5
        assert config.history_length == 4

    def test_quick_preset_is_bandit(self):
        config = ExperimentConfig.quick()
        assert config.gamma == 0.0
        assert config.reward_mode == "utility"

    def test_with_methods(self):
        config = ExperimentConfig.quick().with_seed(9)
        assert config.seed == 9
        assert config.with_reward_mode("paper").reward_mode == "paper"
        assert config.with_history_length(2).history_length == 2

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_episodes=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(reward_mode="bogus")


class TestRunner:
    def test_evaluate_oracle_matches_equilibrium(self, market):
        eq = market.equilibrium()
        evaluation = evaluate_policy(market, OraclePricing(market), rounds=5)
        assert evaluation.mean_price == pytest.approx(eq.price)
        assert evaluation.mean_msp_utility == pytest.approx(eq.msp_utility)
        assert evaluation.best_msp_utility == pytest.approx(eq.msp_utility)
        assert evaluation.mean_total_vmu_utility == pytest.approx(
            eq.total_vmu_utility
        )

    def test_train_drl_smoke(self, market):
        trained = train_drl(market, SMOKE)
        assert trained.training.num_episodes == SMOKE.num_episodes
        evaluation = evaluate_policy(market, trained.policy, rounds=5)
        assert 5.0 <= evaluation.mean_price <= 50.0

    def test_compare_schemes_keys(self, market):
        results = compare_schemes(
            market, SMOKE, schemes=("random", "equilibrium")
        )
        assert set(results) == {"random", "equilibrium"}

    def test_compare_unknown_scheme(self, market):
        with pytest.raises(ValueError):
            compare_schemes(market, SMOKE, schemes=("alien",))

    def test_compare_schemes_stacked_equals_per_market(self, market):
        """The stacked market-grid comparison must reproduce the
        per-market compare_schemes results exactly."""
        markets = [market.with_unit_cost(c) for c in (5.0, 7.0, 9.0)]
        stacked = compare_schemes_stacked(
            markets, SMOKE, schemes=("random", "greedy", "equilibrium")
        )
        assert len(stacked) == 3
        for m, one_market in enumerate(markets):
            solo = compare_schemes(
                one_market, SMOKE, schemes=("random", "greedy", "equilibrium")
            )
            for scheme, evaluation in solo.items():
                assert vars(stacked[m][scheme]) == vars(evaluation)

    def test_train_drl_fleet_one_policy_many_markets(self, market):
        """Fleet training: one agent across heterogeneous markets, one
        LearnedPricing adapter per market (shared weights)."""
        markets = [market.with_unit_cost(c) for c in (5.0, 8.0)]
        fleet = train_drl_fleet(markets, SMOKE)
        assert len(fleet.policies) == 2
        assert fleet.policies[0].agent is fleet.policies[1].agent
        # one iteration collects len(markets) episodes concurrently
        assert fleet.training.num_episodes == SMOKE.num_episodes * 2
        evaluation = evaluate_policy(markets[1], fleet.policies[1], rounds=5)
        assert 5.0 <= evaluation.mean_price <= 50.0


class TestFig2:
    def test_series_lengths_and_table(self):
        result = run_fig2(SMOKE)
        assert len(result.episode_returns) == SMOKE.num_episodes
        assert len(result.episode_best_utilities) == SMOKE.num_episodes
        table = result.table()
        assert "Fig. 2" in str(table)
        assert result.equilibrium_price == pytest.approx(25.34, abs=0.01)

    def test_convergence_properties_well_defined(self):
        result = run_fig2(SMOKE)
        assert result.converged_return >= 0.0
        assert result.utility_gap >= 0.0


class TestFig3Cost:
    def test_structure(self):
        result = run_fig3_cost(
            SMOKE, costs=(5.0, 9.0), schemes=("random", "equilibrium")
        )
        assert result.costs == (5.0, 9.0)
        msp = result.msp_table()
        assert len(msp) == 2
        assert "equilibrium_price" in msp.headers
        vmu = result.vmu_table()
        assert "equilibrium_bandwidth" in vmu.headers

    def test_equilibrium_series_matches_analytic(self):
        result = run_fig3_cost(
            SMOKE, costs=(5.0, 9.0), schemes=("equilibrium",)
        )
        prices = result.series("equilibrium", "mean_price")
        assert prices[0] == pytest.approx(25.34, abs=0.01)
        assert prices[1] == pytest.approx(34.0, abs=0.01)


class TestFig3Vmus:
    def test_structure(self):
        result = run_fig3_vmus(
            SMOKE, counts=(2, 6), schemes=("equilibrium",)
        )
        assert result.counts == (2, 6)
        utilities = result.series("equilibrium", "mean_msp_utility")
        assert utilities[0] == pytest.approx(7.03, abs=0.02)
        assert utilities[1] == pytest.approx(20.35, abs=0.1)

    def test_tables_render(self):
        result = run_fig3_vmus(SMOKE, counts=(2,), schemes=("equilibrium",))
        assert "Fig. 3(c)" in str(result.msp_table())
        assert "Fig. 3(d)" in str(result.vmu_table())


class TestAblations:
    def test_reward_ablation_rows(self):
        result = run_reward_ablation(SMOKE, modes=("utility",))
        assert len(result.rows) == 1
        mode, trained, evaluated = result.rows[0]
        assert mode == "utility"
        assert "E7" in str(result.table())

    def test_history_ablation_rows(self):
        result = run_history_ablation(SMOKE, lengths=(1, 2))
        assert [row[0] for row in result.rows] == [1, 2]
        assert "E8" in str(result.table())


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig3a", "fig3c", "ablations"):
            assert name in out

    def test_figures_registry_complete(self):
        assert set(FIGURES) == {
            "fig2",
            "fig3a",
            "fig3b",
            "fig3c",
            "fig3d",
            "ablations",
            "robustness",
            "welfare",
        }

    def test_welfare_figure_runs(self, capsys, tmp_path):
        assert main(["--figure", "welfare", "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "deadweight" in out
        assert (tmp_path / "welfare.json").exists()

    def test_no_figure_prints_list(self, capsys):
        assert main([]) == 0
        assert "available figures" in capsys.readouterr().out

    def test_multiseed_subcommand(self, capsys, tmp_path):
        assert (
            main(
                [
                    "multiseed",
                    "--seeds",
                    "0,1,2",
                    "--shards",
                    "2",
                    "--schemes",
                    "random,equilibrium",
                    "--output",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Multi-seed comparison" in out
        assert (tmp_path / "multiseed.json").exists()
