"""Backend seam conformance: selection plumbing + numpy-default bitwise pins.

The ``repro.backend.xp`` seam must be invisible under the default numpy
backend: every seam attribute resolves to the *identical* numpy function
object, so all downstream arithmetic is bitwise-unchanged. This suite pins

- the selection plumbing (``REPRO_BACKEND``, :func:`set_backend`,
  :func:`use_backend`, error paths for unknown/incomplete backends);
- attribute identity for every name in :data:`SEAM_ATTRS`;
- that no seam-covered hot-path module imports numpy directly;
- end-to-end bitwise equality of a 50-market stacked solve and a seeded
  fig2 smoke training run under an explicitly selected numpy backend
  (and, for training, fused vs reference hot paths).
"""

import ast
import pathlib

import numpy as np
import pytest
from test_core_equilibria_stacked import random_markets

from repro.backend import (
    SEAM_ATTRS,
    ArrayBackend,
    active_backend,
    get_backend,
    set_backend,
    use_backend,
    xp,
)
from repro.core import MarketStack
from repro.core.stackelberg import StackelbergMarket
from repro.drl.ppo import PPOConfig
from repro.drl.trainer import TrainerConfig, train_pricing_agent
from repro.entities.vmu import paper_fig2_population
from repro.env import VectorMigrationEnv
from repro.errors import ConfigurationError

REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"

SEAM_MODULES = [
    "repro/nn/tensor.py",
    "repro/nn/optim.py",
    "repro/drl/gae.py",
    "repro/drl/fused.py",
    "repro/game/solvers.py",
    "repro/core/utilities.py",
    "repro/channel/ofdma.py",
    "repro/core/marketstack.py",
]


@pytest.fixture
def clean_backend(monkeypatch):
    """Default selection state (no env var, no explicit backend) with
    deterministic restoration afterwards."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    set_backend(None)
    yield monkeypatch
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    set_backend(None)


class TestSelectionPlumbing:
    def test_default_backend_is_numpy(self, clean_backend):
        backend = active_backend()
        assert backend.name == "numpy"
        assert backend.is_numpy
        assert backend.missing_seam_attrs() == []

    def test_env_var_selects_numpy(self, clean_backend):
        clean_backend.setenv("REPRO_BACKEND", "numpy")
        set_backend(None)
        assert active_backend().is_numpy

    def test_unknown_backend_name_raises(self):
        with pytest.raises(ConfigurationError, match="not importable"):
            get_backend("definitely_not_an_importable_module_xyz")

    def test_env_var_unknown_backend_raises_on_resolution(self, clean_backend):
        clean_backend.setenv(
            "REPRO_BACKEND", "definitely_not_an_importable_module_xyz"
        )
        with pytest.raises(ConfigurationError, match="not importable"):
            set_backend(None)

    def test_backend_missing_seam_attrs_rejected(self):
        # ``json`` imports fine but is nothing like an array namespace.
        with pytest.raises(ConfigurationError, match="missing required"):
            get_backend("json")

    def test_explicit_set_backend_by_name(self, clean_backend):
        backend = set_backend("numpy")
        assert backend.is_numpy
        assert active_backend() is backend

    def test_use_backend_wrapper_dispatch_and_restore(self, clean_backend):
        class CountingNamespace:
            def __init__(self):
                self.calls = 0

            def __getattr__(self, name):
                self.calls += 1
                return getattr(np, name)

        wrapper = CountingNamespace()
        counting = ArrayBackend("counting", wrapper)
        assert counting.missing_seam_attrs() == []
        default = active_backend()
        with use_backend(counting) as entered:
            assert entered is counting
            assert active_backend() is counting
            values = xp.asarray([1.0, 2.0, 3.0])
            total = float(xp.sum(values))
        assert total == 6.0
        assert wrapper.calls >= 2
        assert active_backend() is default
        assert active_backend().is_numpy


class TestSeamIsInvisibleUnderNumpy:
    @pytest.mark.parametrize("attr", SEAM_ATTRS)
    def test_xp_attr_is_the_numpy_object(self, clean_backend, attr):
        """The strongest possible bitwise pin: ``xp.<op>`` under the
        default backend IS the numpy function/object, identically."""
        assert getattr(xp, attr) is getattr(np, attr)

    def test_no_seam_module_imports_numpy_directly(self):
        for relative in SEAM_MODULES:
            tree = ast.parse((REPO_SRC / relative).read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                    assert "numpy" not in names, f"{relative} imports numpy"
                elif isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    assert not module.startswith(
                        "numpy"
                    ), f"{relative} imports from numpy"


class TestEndToEndBitwiseUnderExplicitNumpy:
    STACK_FIELDS = (
        "prices",
        "demands",
        "msp_utilities",
        "vmu_utilities",
        "capacity_binding",
        "price_cap_binding",
        "feasible",
        "mask",
        "counts",
        "unit_costs",
    )

    def test_50_market_stacked_solve(self, clean_backend):
        default = MarketStack(random_markets(50, root_seed=3)).equilibria_stacked()
        with use_backend("numpy"):
            explicit = MarketStack(
                random_markets(50, root_seed=3)
            ).equilibria_stacked()
        for name in self.STACK_FIELDS:
            a, b = getattr(explicit, name), getattr(default, name)
            assert a.shape == b.shape, name
            assert np.array_equal(a, b, equal_nan=True), name

    SMOKE = TrainerConfig(
        num_episodes=3,
        update_interval=5,
        update_epochs=2,
        batch_size=5,
        gamma=0.0,
    )

    def _train(self, *, fused, preallocate):
        market = StackelbergMarket(paper_fig2_population())
        venv = VectorMigrationEnv.from_market(
            market,
            2,
            seed=0,
            history_length=2,
            rounds_per_episode=10,
            reward_mode="utility",
        )
        agent, result, _ = train_pricing_agent(
            venv,
            trainer_config=self.SMOKE,
            ppo_config=PPOConfig(learning_rate=1e-3, entropy_coef=0.01),
            seed=11,
            fused=fused,
            preallocate=preallocate,
        )
        return agent, result

    def _assert_same_training(self, left, right):
        agent_a, result_a = left
        agent_b, result_b = right
        assert result_a.episode_returns == result_b.episode_returns
        assert result_a.episode_best_utilities == result_b.episode_best_utilities
        assert result_a.episode_mean_utilities == result_b.episode_mean_utilities
        assert result_a.episode_final_prices == result_b.episode_final_prices
        assert result_a.update_stats == result_b.update_stats
        for p, q in zip(
            agent_a.network.parameters(), agent_b.network.parameters()
        ):
            np.testing.assert_array_equal(p.data, q.data)

    def test_fig2_smoke_training_fused_matches_reference(self, clean_backend):
        """The whole fused hot path (flat Adam + batch GAE + preallocated
        storage + graph-free update) against the seed autograd path."""
        self._assert_same_training(
            self._train(fused=True, preallocate=True),
            self._train(fused=False, preallocate=False),
        )

    def test_fig2_smoke_training_explicit_numpy_backend(self, clean_backend):
        default = self._train(fused=True, preallocate=True)
        clean_backend.setenv("REPRO_BACKEND", "numpy")
        set_backend(None)
        explicit = self._train(fused=True, preallocate=True)
        self._assert_same_training(default, explicit)
