"""Public-API surface tests: every __all__ name resolves, constants sane."""

import importlib

import pytest

import repro
from repro import constants

PACKAGES = [
    "repro",
    "repro.utils",
    "repro.channel",
    "repro.entities",
    "repro.mobility",
    "repro.migration",
    "repro.game",
    "repro.core",
    "repro.nn",
    "repro.drl",
    "repro.env",
    "repro.baselines",
    "repro.experiments",
    "repro.service",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    module = importlib.import_module(package_name)
    assert hasattr(module, "__all__"), f"{package_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package_name}.{name} missing"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_quickstart_from_docstring():
    """The snippet in repro's module docstring must actually work."""
    from repro.core import StackelbergMarket
    from repro.entities import paper_fig2_population

    market = StackelbergMarket(paper_fig2_population())
    eq = market.equilibrium()
    assert eq.price > 0 and eq.msp_utility > 0


class TestConstants:
    def test_radio_parameters(self):
        assert constants.TRANSMIT_POWER_DBM == 40.0
        assert constants.CHANNEL_GAIN_DB == -20.0
        assert constants.RSU_DISTANCE_M == 500.0
        assert constants.PATH_LOSS_EXPONENT == 2.0
        assert constants.NOISE_POWER_DBM == -150.0

    def test_market_parameters(self):
        assert constants.MAX_BANDWIDTH == 50.0
        assert constants.UNIT_TRANSMISSION_COST == 5.0
        assert constants.MAX_PRICE == 50.0

    def test_drl_parameters(self):
        assert constants.HISTORY_LENGTH == 4
        assert constants.NUM_EPISODES == 500
        assert constants.ROUNDS_PER_EPISODE == 100
        assert constants.UPDATE_EPOCHS == 10
        assert constants.BATCH_SIZE == 20
        assert constants.LEARNING_RATE == 1e-5
        assert constants.HIDDEN_SIZES == (64, 64)

    def test_population_ranges(self):
        assert constants.VT_DATA_SIZE_RANGE_MB == (100.0, 300.0)
        assert constants.IMMERSION_COEF_RANGE == (5.0, 20.0)
        assert constants.MAX_VMUS == 6

    def test_error_hierarchy(self):
        from repro import errors

        for name in (
            "ConfigurationError",
            "ChannelError",
            "GameError",
            "MigrationError",
            "MobilityError",
            "NeuralNetworkError",
            "ExperimentError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)
