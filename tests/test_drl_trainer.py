"""Algorithm-1 trainer tests: plumbing on smoke budgets, traces, configs."""

import numpy as np
import pytest

from repro.core.stackelberg import StackelbergMarket
from repro.drl.policy import ActionScaler, ActorCritic
from repro.drl.ppo import PPOAgent, PPOConfig
from repro.drl.trainer import Trainer, TrainerConfig, train_pricing_agent
from repro.entities.vmu import paper_fig2_population
from repro.env.migration_game import MigrationGameEnv
from repro.errors import ConfigurationError


@pytest.fixture
def env():
    market = StackelbergMarket(paper_fig2_population())
    return MigrationGameEnv(
        market,
        history_length=2,
        rounds_per_episode=10,
        reward_mode="utility",
        seed=0,
    )


SMOKE = TrainerConfig(
    num_episodes=3,
    update_interval=5,
    update_epochs=2,
    batch_size=5,
    gamma=0.0,
)


class TestTrainer:
    def test_traces_have_episode_length(self, env):
        agent, result, scaler = train_pricing_agent(
            env, trainer_config=SMOKE, ppo_config=PPOConfig(learning_rate=1e-3), seed=0
        )
        assert result.num_episodes == 3
        assert len(result.episode_best_utilities) == 3
        assert len(result.episode_mean_utilities) == 3
        assert len(result.episode_final_prices) == 3

    def test_updates_happen(self, env):
        _, result, _ = train_pricing_agent(
            env, trainer_config=SMOKE, ppo_config=PPOConfig(learning_rate=1e-3), seed=0
        )
        # 10 rounds per episode / 5-round interval * 2 epochs * 3 episodes.
        assert len(result.update_stats) == 12

    def test_prices_feasible(self, env):
        _, result, scaler = train_pricing_agent(
            env, trainer_config=SMOKE, ppo_config=PPOConfig(learning_rate=1e-3), seed=0
        )
        assert all(5.0 <= p <= 50.0 for p in result.episode_final_prices)

    def test_deterministic_given_seed(self, env):
        market = StackelbergMarket(paper_fig2_population())

        def run():
            fresh_env = MigrationGameEnv(
                market,
                history_length=2,
                rounds_per_episode=10,
                reward_mode="utility",
                seed=0,
            )
            _, result, _ = train_pricing_agent(
                fresh_env,
                trainer_config=SMOKE,
                ppo_config=PPOConfig(learning_rate=1e-3),
                seed=11,
            )
            return result.episode_returns

        assert run() == run()

    def test_tail_mean_best_utility(self, env):
        _, result, _ = train_pricing_agent(
            env, trainer_config=SMOKE, ppo_config=PPOConfig(learning_rate=1e-3), seed=0
        )
        tail = result.tail_mean_best_utility(1.0)
        assert tail == pytest.approx(np.mean(result.episode_best_utilities))
        with pytest.raises(ConfigurationError):
            result.tail_mean_best_utility(0.0)

    def test_manual_trainer_wiring(self, env):
        network = ActorCritic(env.observation_dim, (8,), seed=0)
        agent = PPOAgent(network, PPOConfig(learning_rate=1e-3))
        scaler = ActionScaler(env.action_low, env.action_high)
        trainer = Trainer(env, agent, scaler, SMOKE, seed=0)
        result = trainer.train()
        assert result.num_episodes == 3
        price = trainer.evaluate_price()
        assert 5.0 <= price <= 50.0

    def test_invalid_trainer_config(self):
        with pytest.raises(ConfigurationError):
            TrainerConfig(num_episodes=0)
        with pytest.raises(ConfigurationError):
            TrainerConfig(gamma=1.5)
        with pytest.raises(ConfigurationError):
            TrainerConfig(batch_size=0)
