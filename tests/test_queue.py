"""Queue subsystem tests: leasing, heartbeats, reaping, artifacts,
and the queue-backed scheduler's bitwise-equality contract.

Lease-expiry paths run on *fake time* (the ``now=`` injection points on
``heartbeat`` / ``heartbeat_age`` / ``reap``) so a 60-second TTL tests in
milliseconds; the one place real time matters — a survivor worker reaping
a worker whose beacon was staled into the past — still completes
instantly because reap compares the beacon's recorded stamp against real
wall clock. The subprocess/SIGKILL end of kill-resume lives in
``test_queue_smoke.py``.
"""

import json
import signal
import time

import pytest

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population, sample_population
from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.fig3_cost import run_fig3_cost
from repro.experiments.robustness import run_distance_sweep
from repro.experiments.run import schedule_main, worker_main
from repro.experiments.scheduler import (
    Job,
    JobScheduler,
    execute_job,
    market_to_payload,
)
from repro.queue import (
    Artifact,
    ArtifactStore,
    JobQueue,
    QueueScheduler,
    QueueWorker,
)
from repro.utils.serialization import load_json, save_json

WATCHDOG_SECONDS = 120.0


@pytest.fixture(autouse=True)
def _watchdog():
    """Per-test timeout guard: a stuck wait loop fails fast, not forever."""
    if not hasattr(signal, "SIGALRM"):  # non-POSIX fallback: no guard
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"queue test exceeded the {WATCHDOG_SECONDS}s watchdog — "
            "a drain/wait loop is probably stuck"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _cell_jobs(count=3):
    return [
        Job(
            "equilibrium_cell",
            {
                "market": market_to_payload(
                    StackelbergMarket(sample_population(3, seed=seed))
                )
            },
        )
        for seed in range(count)
    ]


def _drain(queue, worker_id="test-worker"):
    """Run one in-process worker until the queue is empty."""
    worker = QueueWorker(queue, worker_id=worker_id, poll_interval=0.01)
    return worker.run(drain=True)


class TestJobQueue:
    def test_rejects_nonpositive_ttl(self, tmp_path):
        with pytest.raises(ExperimentError, match="lease_ttl"):
            JobQueue(tmp_path, lease_ttl=0.0)

    def test_enqueue_lease_ack_lifecycle(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = _cell_jobs(1)[0]
        assert queue.enqueue(job) is True
        assert queue.pending_hashes() == [job.job_hash()]
        leased = queue.lease("w1")
        assert leased is not None
        assert leased.job_hash == job.job_hash()
        assert leased.job.spec() == job.spec()
        assert queue.pending_hashes() == []
        assert queue.leased_hashes() == {"w1": [job.job_hash()]}
        queue.store.put(leased.job, execute_job(leased.job))
        queue.ack(leased)
        assert queue.leased_hashes() == {"w1": []}
        assert queue.outstanding() == []

    def test_enqueue_dedupes_pending_leased_and_stored(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = _cell_jobs(1)[0]
        assert queue.enqueue(job) is True
        assert queue.enqueue(job) is False  # already pending
        leased = queue.lease("w1")
        assert queue.enqueue(job) is False  # leased
        queue.store.put(job, execute_job(job))
        queue.ack(leased)
        assert queue.enqueue(job) is False  # stored
        assert queue.enqueue_many(_cell_jobs(2)) == 1  # job 0 is stored

    def test_lease_empty_queue_returns_none(self, tmp_path):
        assert JobQueue(tmp_path).lease("w1") is None

    def test_two_workers_never_hold_the_same_job(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue_many(_cell_jobs(3))
        held = []
        for worker_id in ("a", "b", "c", "d"):
            leased = queue.lease(worker_id)
            if leased is not None:
                held.append(leased.job_hash)
        assert len(held) == 3
        assert len(set(held)) == 3
        assert queue.pending_hashes() == []

    def test_release_returns_job_to_pending(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = _cell_jobs(1)[0]
        queue.enqueue(job)
        leased = queue.lease("w1")
        queue.release(leased)
        assert queue.pending_hashes() == [job.job_hash()]
        assert queue.leased_hashes()["w1"] == []

    def test_worker_id_must_be_a_directory_name(self, tmp_path):
        queue = JobQueue(tmp_path)
        for bad in ("", "a/b", "..", "a\\b"):
            with pytest.raises(ExperimentError, match="worker id"):
                queue.heartbeat(bad)

    def test_malformed_pending_spec_is_quarantined(self, tmp_path):
        queue = JobQueue(tmp_path)
        good = _cell_jobs(1)[0]
        queue.enqueue(good)
        bad = queue.pending_dir / ("0" * 64 + ".json")
        bad.write_text('{"kind": "x"}')  # missing payload
        with pytest.raises(ExperimentError, match="quarantined"):
            while queue.lease("w1") is not None:
                pass
        rejected = list(queue.leases_dir.glob("*/*.rejected"))
        assert len(rejected) == 1
        # The queue is not wedged: the good job still leases.
        assert queue.pending_hashes() in ([good.job_hash()], [])
        remaining = queue.lease("w1")
        if remaining is not None:
            assert remaining.job_hash == good.job_hash()


class TestHeartbeatsAndReaping:
    def test_heartbeat_age_uses_recorded_stamp(self, tmp_path):
        queue = JobQueue(tmp_path, lease_ttl=60.0)
        now = 1_000_000.0
        queue.heartbeat("w1", now=now - 42.0)
        assert queue.heartbeat_age("w1", now=now) == pytest.approx(42.0)
        assert queue.heartbeat_age("never-beat", now=now) is None

    def test_heartbeat_age_falls_back_to_mtime(self, tmp_path):
        queue = JobQueue(tmp_path, lease_ttl=60.0)
        path = queue.heartbeat("w1")
        path.write_text("not json")
        age = queue.heartbeat_age("w1")
        assert age is not None and age < 60.0

    def test_reap_requeues_only_stale_workers(self, tmp_path):
        queue = JobQueue(tmp_path, lease_ttl=60.0)
        jobs = _cell_jobs(2)
        queue.enqueue_many(jobs)
        now = 1_000_000.0
        dead = queue.lease("dead")
        live = queue.lease("live")
        # lease() writes a fresh beacon; stale only the dead worker's.
        queue.heartbeat("dead", now=now - 61.0)
        queue.heartbeat("live", now=now - 59.0)
        requeued = queue.reap(now=now)
        assert requeued == [dead.job_hash]
        assert queue.pending_hashes() == [dead.job_hash]
        assert queue.leased_hashes() == {"live": [live.job_hash]}
        # The dead worker's bookkeeping is retired with its leases.
        assert not (queue.leases_dir / "dead").exists()
        assert not (queue.heartbeats_dir / "dead.json").exists()

    def test_reap_within_ttl_is_a_noop(self, tmp_path):
        queue = JobQueue(tmp_path, lease_ttl=60.0)
        queue.enqueue_many(_cell_jobs(1))
        now = 1_000_000.0
        leased = queue.lease("w1")
        queue.heartbeat("w1", now=now)
        assert queue.reap(now=now + 59.0) == []
        assert queue.leased_hashes() == {"w1": [leased.job_hash]}

    def test_reap_treats_missing_heartbeat_as_dead(self, tmp_path):
        queue = JobQueue(tmp_path, lease_ttl=60.0)
        queue.enqueue_many(_cell_jobs(1))
        leased = queue.lease("w1")
        (queue.heartbeats_dir / "w1.json").unlink()
        assert queue.reap() == [leased.job_hash]
        assert queue.pending_hashes() == [leased.job_hash]

    def test_requeued_job_completes_on_another_worker(self, tmp_path):
        """Kill-resume, fake-killed: a worker leases a job and dies (its
        beacon staled into the past); a survivor reaps, re-leases, and
        completes it — the queue's end-to-end liveness contract."""
        queue = JobQueue(tmp_path, lease_ttl=60.0)
        job = _cell_jobs(1)[0]
        queue.enqueue(job)
        dead = queue.lease("dead")
        assert dead is not None
        queue.heartbeat("dead", now=time.time() - 120.0)  # SIGKILLed
        stats = _drain(queue, worker_id="survivor")
        assert stats.requeued == 1
        assert stats.executed == 1
        assert queue.outstanding() == []
        stored = queue.store.get(job)
        assert stored is not None
        assert stored.result == execute_job(job)

    def test_duplicate_execution_converges_on_one_result(self, tmp_path):
        """At-least-once execution, exactly-once results: a reaped-but-
        alive worker finishing late produces the identical entry, and a
        worker leasing an already-stored job acks without executing."""
        queue = JobQueue(tmp_path, lease_ttl=60.0)
        job = _cell_jobs(1)[0]
        queue.enqueue(job)
        slow = queue.lease("slow")
        queue.heartbeat("slow", now=time.time() - 120.0)
        requeued = queue.reap()
        assert requeued == [slow.job_hash]
        # The slow worker was only paused, not dead: it finishes anyway.
        queue.store.put(slow.job, execute_job(slow.job))
        queue.ack(slow)  # lease file already reaped away — harmless
        # The requeued duplicate is served by dedup, not re-execution.
        stats = _drain(queue, worker_id="survivor")
        assert stats.deduplicated == 1
        assert stats.executed == 0
        assert len(queue.store) == 1


class TestSpecFilesRoundTrip:
    """The on-disk queue spec files are the ``Job.spec()`` wire form."""

    def test_floats_survive_enqueue_lease_execute_bitwise(self, tmp_path):
        queue = JobQueue(tmp_path)
        payload = {
            "market": market_to_payload(
                StackelbergMarket(sample_population(3, seed=7))
            )
        }
        # Awkward floats that any rounding codec would mangle.
        payload["market"]["config"]["unit_cost"] = 0.1 + 0.2
        job = Job("equilibrium_cell", payload)
        queue.enqueue(job)
        on_disk = load_json(queue.pending_dir / f"{job.job_hash()}.json")
        assert Job.from_spec(on_disk).job_hash() == job.job_hash()
        leased = queue.lease("w1")
        assert leased.job.payload["market"]["config"]["unit_cost"] == 0.1 + 0.2
        direct = execute_job(job)
        queued = execute_job(leased.job)
        assert queued == direct  # bitwise: same floats in, same floats out

    def test_tampered_spec_with_unknown_keys_is_rejected(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = _cell_jobs(1)[0]
        queue.enqueue(job)
        path = queue.pending_dir / f"{job.job_hash()}.json"
        entry = load_json(path)
        entry["priority"] = 9  # not part of the wire form
        path.write_text(json.dumps(entry))
        with pytest.raises(ExperimentError, match="unknown key"):
            Job.from_spec(load_json(path))
        with pytest.raises(ExperimentError, match="quarantined"):
            queue.lease("w1")


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        job = _cell_jobs(1)[0]
        result = execute_job(job)
        artifact = store.put(job, result)
        assert isinstance(artifact, Artifact)
        assert artifact.job_hash == job.job_hash()
        assert artifact.result == result
        assert artifact.spec() == job.spec()
        loaded = store.get(job)
        assert loaded is not None
        assert loaded.result == result
        assert store.contains(job)
        assert store.hashes() == [job.job_hash()]
        assert len(store) == 1

    def test_get_absent_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get(_cell_jobs(1)[0]) is None
        assert store.load("f" * 64) is None
        assert store.hashes() == []

    def test_load_by_hash_verifies_embedded_provenance(self, tmp_path):
        store = ArtifactStore(tmp_path)
        job = _cell_jobs(1)[0]
        store.put(job, execute_job(job))
        loaded = store.load(job.job_hash())
        assert loaded.job.spec() == job.spec()
        # A foreign entry — spec does not hash to its own file name.
        foreign = store.path_for("a" * 64)
        save_json(foreign, {"job": job.spec(), "result": {"x": 1}})
        with pytest.raises(ExperimentError, match="foreign or tampered"):
            store.load("a" * 64)

    def test_get_distinguishes_foreign_file_from_collision(self, tmp_path):
        store = ArtifactStore(tmp_path)
        job = _cell_jobs(1)[0]
        store.put(job, execute_job(job))
        other = _cell_jobs(2)[1]
        save_json(
            store.path_for(job), {"job": other.spec(), "result": {"x": 1}}
        )
        with pytest.raises(ExperimentError) as excinfo:
            store.get(job)
        message = str(excinfo.value)
        # Satellite contract: the error names both kinds and says which
        # failure mode this is (foreign file, not a SHA-256 collision).
        assert "found kind 'equilibrium_cell'" in message
        assert "expected kind 'equilibrium_cell'" in message
        assert "foreign file" in message
        assert "collision" not in message.split("foreign file")[1]

    def test_replay_asserts_bitwise_equality(self, tmp_path):
        store = ArtifactStore(tmp_path)
        job = _cell_jobs(1)[0]
        artifact = store.put(job, execute_job(job))
        assert artifact.replay() == artifact.result
        # Tamper with the stored result: replay must catch it.
        entry = load_json(artifact.path)
        entry["result"]["price"] += 1e-9
        artifact.path.write_text(json.dumps(entry))
        tampered = store.load(job.job_hash())
        with pytest.raises(ExperimentError, match="does not replay"):
            tampered.replay()

    def test_every_stored_artifact_replays(self, tmp_path):
        """Acceptance: after a drain, each artifact's embedded spec
        re-executes to the identical payload."""
        queue = JobQueue(tmp_path)
        queue.enqueue_many(_cell_jobs(3))
        _drain(queue)
        artifacts = list(queue.store)
        assert len(artifacts) == 3
        for artifact in artifacts:
            assert artifact.replay() == artifact.result

    def test_cell_artifacts_record_no_checkpoint(self, tmp_path):
        store = ArtifactStore(tmp_path)
        job = _cell_jobs(1)[0]
        assert store.put(job, execute_job(job)).checkpoint() is None

    def test_store_is_a_valid_scheduler_cache(self, tmp_path):
        """The entry format is shared: a queue's results/ dir serves a
        JobScheduler as cache_dir without re-execution, and vice versa."""
        queue = JobQueue(tmp_path / "queue")
        jobs = _cell_jobs(2)
        queue.enqueue_many(jobs)
        _drain(queue)
        scheduler = JobScheduler(workers=1, cache_dir=queue.store.root)
        results = scheduler.run(jobs)
        assert scheduler.cache_hits == 2
        assert scheduler.jobs_executed == 0
        assert results == [queue.store.get(job).result for job in jobs]
        # And a scheduler cache pre-seeds a queue: nothing re-enqueues.
        cache_dir = tmp_path / "cache"
        JobScheduler(workers=1, cache_dir=cache_dir).run(jobs)
        seeded = JobQueue(tmp_path / "queue2")
        for path in cache_dir.glob("*.json"):
            (seeded.store.root / path.name).write_bytes(path.read_bytes())
        assert seeded.enqueue_many(jobs) == 0


class TestQueueScheduler:
    def test_invalid_knobs_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="workers"):
            QueueScheduler(tmp_path, workers=0)
        with pytest.raises(ExperimentError, match="wait_timeout"):
            QueueScheduler(tmp_path, wait_timeout=0.0)

    def test_inline_drain_matches_direct_execution(self, tmp_path):
        jobs = _cell_jobs(3)
        scheduler = QueueScheduler(tmp_path, poll_interval=0.01)
        results = scheduler.run(jobs)
        assert results == [execute_job(job) for job in jobs]
        assert scheduler.jobs_executed == 3
        assert scheduler.cache_hits == 0
        assert scheduler.job_sources == ["executed"] * 3
        # Nothing left behind: no pending files, no leases, all stored.
        assert scheduler.queue.outstanding() == []
        assert scheduler.queue.stats().pending == 0

    def test_second_run_is_all_cache_hits(self, tmp_path):
        jobs = _cell_jobs(2)
        QueueScheduler(tmp_path, poll_interval=0.01).run(jobs)
        again = QueueScheduler(tmp_path, poll_interval=0.01)
        results = again.run(jobs)
        assert again.cache_hits == 2
        assert again.jobs_executed == 0
        assert again.job_sources == ["cache"] * 2
        assert results == [execute_job(job) for job in jobs]

    def test_duplicate_jobs_collapse_to_one_execution(self, tmp_path):
        job = _cell_jobs(1)[0]
        scheduler = QueueScheduler(tmp_path, poll_interval=0.01)
        results = scheduler.run([job, job, job])
        assert scheduler.jobs_executed == 1
        assert results[0] == results[1] == results[2]
        assert len(scheduler.queue.store) == 1

    def test_resume_false_recomputes_and_overwrites(self, tmp_path):
        jobs = _cell_jobs(1)
        QueueScheduler(tmp_path, poll_interval=0.01).run(jobs)
        entry_path = QueueScheduler(tmp_path).queue.store.path_for(jobs[0])
        entry = load_json(entry_path)
        entry["result"]["price"] = -1.0  # poison the stored result
        entry_path.write_text(json.dumps(entry))
        fresh = QueueScheduler(tmp_path, resume=False, poll_interval=0.01)
        results = fresh.run(jobs)
        assert fresh.jobs_executed == 1
        assert fresh.cache_hits == 0
        assert results[0]["price"] != -1.0
        assert load_json(entry_path)["result"] == results[0]

    def test_producer_mode_times_out_without_a_fleet(self, tmp_path):
        scheduler = QueueScheduler(
            tmp_path, execute=False, wait_timeout=0.2, poll_interval=0.01
        )
        with pytest.raises(ExperimentError, match="wait_timeout"):
            scheduler.run(_cell_jobs(1))
        # The job stays pending for a fleet that shows up later.
        assert len(scheduler.queue.pending_hashes()) == 1

    def test_producer_mode_served_by_external_worker(self, tmp_path):
        jobs = _cell_jobs(2)
        # A "fleet" pre-computes the batch, as if racing the producer.
        fleet_queue = JobQueue(tmp_path)
        fleet_queue.enqueue_many(jobs)
        _drain(fleet_queue, worker_id="fleet")
        producer = QueueScheduler(
            tmp_path, execute=False, wait_timeout=5.0, poll_interval=0.01
        )
        results = producer.run(jobs)
        assert producer.cache_hits == 2
        assert results == [execute_job(job) for job in jobs]

    def test_scheduler_counts_work_done_by_fleet(self, tmp_path):
        """jobs_executed counts the batch's misses (the JobScheduler
        meaning) and jobs_completed_elsewhere attributes fleet work."""
        jobs = _cell_jobs(2)
        fleet_queue = JobQueue(tmp_path)
        fleet_queue.enqueue_many(jobs[:1])
        _drain(fleet_queue, worker_id="fleet")
        scheduler = QueueScheduler(tmp_path, poll_interval=0.01)
        scheduler.run(jobs)
        assert scheduler.cache_hits == 1
        assert scheduler.jobs_executed == 1
        assert scheduler.jobs_completed_elsewhere == 0


class TestQueueSchedulerExperiments:
    """Acceptance: run_experiment through QueueScheduler is bitwise-equal
    to the direct path, for a DRL figure and a robustness sweep."""

    def test_fig3_cost_bitwise_equals_direct(self, tmp_path):
        config = ExperimentConfig.smoke()
        costs = (5.0, 7.0)
        schemes = ("drl", "random", "equilibrium")
        direct = run_fig3_cost(config, costs=costs, schemes=schemes)
        scheduler = QueueScheduler(tmp_path, poll_interval=0.01)
        queued = run_fig3_cost(
            config, costs=costs, schemes=schemes, scheduler=scheduler
        )
        for cost in costs:
            for scheme in schemes:
                assert vars(queued.evaluations[cost][scheme]) == vars(
                    direct.evaluations[cost][scheme]
                )
        # DRL jobs parked their checkpoints in the store's sidecar dir,
        # recorded store-relative, and the artifacts resolve them.
        checkpoints = sorted(scheduler.queue.store.checkpoint_dir().glob("*.npz"))
        assert len(checkpoints) == len(costs)
        with_blob = [
            artifact
            for artifact in scheduler.queue.store
            if artifact.checkpoint() is not None
        ]
        assert len(with_blob) == len(costs)
        for artifact in with_blob:
            assert artifact.checkpoint().exists()

    def test_distance_sweep_bitwise_equals_direct(self, tmp_path):
        direct = run_distance_sweep()
        scheduler = QueueScheduler(tmp_path, poll_interval=0.01)
        queued = run_distance_sweep(scheduler=scheduler)
        assert queued.prices == direct.prices
        assert queued.msp_utilities == direct.msp_utilities
        assert scheduler.jobs_executed == len(direct.prices)

    def test_run_experiment_accepts_queue_scheduler(self, tmp_path):
        params = {"distances_m": (500.0, 1000.0)}
        direct = run_experiment("distance_sweep", params)
        queued = run_experiment(
            "distance_sweep",
            params,
            scheduler=QueueScheduler(tmp_path, poll_interval=0.01),
        )
        assert queued.prices == direct.prices
        assert queued.msp_utilities == direct.msp_utilities


class TestQueueCli:
    def _jobs_file(self, tmp_path, count=2):
        jobs = _cell_jobs(count)
        path = tmp_path / "jobs.json"
        save_json(path, [job.spec() for job in jobs])
        return path, jobs

    def test_schedule_enqueue_then_worker_drain(self, tmp_path, capsys):
        jobs_file, jobs = self._jobs_file(tmp_path)
        queue_dir = tmp_path / "queue"
        assert (
            schedule_main(
                [
                    "--jobs", str(jobs_file),
                    "--queue-dir", str(queue_dir),
                    "--enqueue",
                ]
            )
            == 0
        )
        assert "enqueued 2 of 2" in capsys.readouterr().out
        assert (
            worker_main(
                ["--queue-dir", str(queue_dir), "--drain", "--poll", "0.01"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 job(s) completed: 2 executed" in out
        store = JobQueue(queue_dir).store
        for job in jobs:
            assert store.get(job).result == execute_job(job)

    def test_schedule_through_queue_scheduler(self, tmp_path, capsys):
        jobs_file, jobs = self._jobs_file(tmp_path)
        queue_dir = tmp_path / "queue"
        assert (
            schedule_main(
                ["--jobs", str(jobs_file), "--queue-dir", str(queue_dir)]
            )
            == 0
        )
        assert "2 executed, 0 from cache" in capsys.readouterr().out
        # Re-run: pure cache hits through the same queue directory.
        assert (
            schedule_main(
                ["--jobs", str(jobs_file), "--queue-dir", str(queue_dir)]
            )
            == 0
        )
        assert "0 executed, 2 from cache" in capsys.readouterr().out

    def test_enqueue_requires_queue_dir(self, tmp_path):
        jobs_file, _ = self._jobs_file(tmp_path)
        with pytest.raises(SystemExit):
            schedule_main(["--jobs", str(jobs_file), "--enqueue"])

    def test_worker_rejects_bad_knobs(self, tmp_path):
        with pytest.raises(SystemExit):
            worker_main(["--queue-dir", str(tmp_path), "--ttl", "0"])
        with pytest.raises(SystemExit):
            worker_main(["--queue-dir", str(tmp_path), "--max-jobs", "0"])

    def test_worker_drains_empty_queue_immediately(self, tmp_path, capsys):
        assert (
            worker_main(["--queue-dir", str(tmp_path), "--drain"]) == 0
        )
        assert "0 job(s) completed" in capsys.readouterr().out
