"""VectorMigrationEnv tests: exact-trace parity with sequential envs.

The acceptance criterion of the batched engine: a vector env over ``E``
single-seed envs must reproduce the *exact* per-episode utility trace of
``E`` sequential ``MigrationGameEnv`` runs with the same seeds — bitwise,
not approximately.
"""

import numpy as np
import pytest

from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import paper_fig2_population, uniform_population
from repro.env import MigrationGameEnv, VectorMigrationEnv
from repro.errors import EnvironmentError_


@pytest.fixture
def market():
    return StackelbergMarket(paper_fig2_population())


def sequential_traces(market, seeds, actions, **env_kwargs):
    """Reference: run each env alone and record the full step traces."""
    traces = []
    for e, seed in enumerate(seeds):
        env = MigrationGameEnv(market, seed=seed, **env_kwargs)
        observation = env.reset()
        rows = []
        for action in actions[:, e]:
            observation, reward, done, info = env.step(float(action))
            rows.append(
                (observation.copy(), reward, done, info["msp_utility"], info["best_utility"])
            )
        traces.append(rows)
    return traces


class TestExactTraceParity:
    def test_vector_env_matches_sequential_runs(self, market):
        """Acceptance: E single-seed envs in the vector env reproduce the
        exact utility/reward/observation traces of E sequential runs."""
        E, K = 5, 20
        seeds = [3, 14, 15, 92, 65]
        kwargs = dict(history_length=3, rounds_per_episode=K)
        rng = np.random.default_rng(0)
        actions = rng.uniform(5.0, 50.0, size=(K, E))

        expected = sequential_traces(market, seeds, actions, **kwargs)
        venv = VectorMigrationEnv.from_market(market, E, seeds=seeds, **kwargs)
        venv.reset()
        for k in range(K):
            observations, rewards, dones, infos = venv.step(actions[k])
            for e in range(E):
                obs, reward, done, utility, best = expected[e][k]
                assert (observations[e] == obs).all()
                assert rewards[e] == reward
                assert dones[e] == done
                assert infos[e]["msp_utility"] == utility
                assert infos[e]["best_utility"] == best

    def test_parity_across_full_episodes_and_reset(self, market):
        """Two full episodes (reset between them) stay in lockstep too —
        the per-env RNG streams must advance identically."""
        E, K = 3, 8
        seeds = [0, 1, 2]
        kwargs = dict(history_length=2, rounds_per_episode=K, reward_mode="utility")
        rng = np.random.default_rng(42)
        actions = rng.uniform(5.0, 50.0, size=(2 * K, E))

        envs = [MigrationGameEnv(market, seed=s, **kwargs) for s in seeds]
        venv = VectorMigrationEnv.from_market(market, E, seeds=seeds, **kwargs)
        for episode in range(2):
            expected_obs = np.stack([env.reset() for env in envs])
            assert (venv.reset() == expected_obs).all()
            for k in range(K):
                step = episode * K + k
                observations, rewards, _, _ = venv.step(actions[step])
                for e, env in enumerate(envs):
                    obs, reward, _, _ = env.step(float(actions[step][e]))
                    assert (observations[e] == obs).all()
                    assert rewards[e] == reward

    def test_mixed_markets_batch_solve_each_envs_own_outcome(self):
        """Different member markets batch-solve through one MarketStack
        pass; each env must still receive its own market's outcome."""
        market_a = StackelbergMarket(paper_fig2_population())
        market_b = StackelbergMarket(
            uniform_population(2, data_size_mb=120.0, immersion_coef=4.0)
        )
        kwargs = dict(history_length=2, rounds_per_episode=5)
        venv = VectorMigrationEnv(
            [
                MigrationGameEnv(market_a, seed=0, **kwargs),
                MigrationGameEnv(market_b, seed=1, **kwargs),
            ]
        )
        ref_a = MigrationGameEnv(market_a, seed=0, **kwargs)
        ref_b = MigrationGameEnv(market_b, seed=1, **kwargs)
        ref_a.reset()
        ref_b.reset()
        venv.reset()
        _, rewards, _, infos = venv.step(np.array([20.0, 20.0]))
        _, r_a, _, info_a = ref_a.step(20.0)
        _, r_b, _, info_b = ref_b.step(20.0)
        assert rewards[0] == r_a and rewards[1] == r_b
        assert infos[0]["msp_utility"] == info_a["msp_utility"]
        assert infos[1]["msp_utility"] == info_b["msp_utility"]
        assert infos[0]["msp_utility"] != infos[1]["msp_utility"]

    def test_heterogeneous_fleet_matches_sequential_runs_bitwise(self):
        """Acceptance: a fleet of envs over *different* markets (costs,
        caps, populations' parameters all varied) reproduces the exact
        traces of sequential single-env runs — the batched stacked solve
        changes nothing, bit for bit."""
        base = StackelbergMarket(paper_fig2_population())
        markets = [
            base.with_unit_cost(5.0),
            base.with_unit_cost(7.5),
            StackelbergMarket(
                uniform_population(2, data_size_mb=150.0, immersion_coef=6.0),
                config=MarketConfig(unit_cost=4.0, max_bandwidth=20.0),
            ),
            StackelbergMarket(
                paper_fig2_population(),
                config=MarketConfig(enforce_capacity=False),
            ),
        ]
        E, K = len(markets), 15
        seeds = [21, 22, 23, 24]
        kwargs = dict(history_length=3, rounds_per_episode=K)
        rng = np.random.default_rng(77)
        actions = rng.uniform(4.0, 55.0, size=(K, E))

        refs = [
            MigrationGameEnv(market, seed=seed, **kwargs)
            for market, seed in zip(markets, seeds)
        ]
        venv = VectorMigrationEnv.from_markets(markets, seeds=seeds, **kwargs)
        expected_obs = np.stack([ref.reset() for ref in refs])
        assert (venv.reset() == expected_obs).all()
        for k in range(K):
            observations, rewards, dones, infos = venv.step(actions[k])
            for e, ref in enumerate(refs):
                obs, reward, done, info = ref.step(float(actions[k][e]))
                assert (observations[e] == obs).all()
                assert rewards[e] == reward
                assert dones[e] == done
                assert infos[e]["msp_utility"] == info["msp_utility"]
                assert (infos[e]["allocations"] == info["allocations"]).all()
                assert (
                    infos[e]["vmu_utilities"] == info["vmu_utilities"]
                ).all()


class TestVectorEnvApi:
    def test_from_market_env0_matches_scalar_seed(self, market):
        """seed=s seeds env 0 with s itself, so env 0 matches the scalar
        env's stream (the num_envs=1 bit-compat contract)."""
        venv = VectorMigrationEnv.from_market(
            market, 2, seed=7, history_length=2, rounds_per_episode=5
        )
        scalar = MigrationGameEnv(
            market, seed=7, history_length=2, rounds_per_episode=5
        )
        assert (venv.reset()[0] == scalar.reset()).all()

    def test_from_market_adjacent_root_seeds_do_not_share_streams(self, market):
        """Regression: envs e>=1 derive from SeedSequence children, so the
        env batches of adjacent root seeds (a multiseed sweep) must not
        reuse each other's streams the way seed+e offsets would."""
        kwargs = dict(history_length=2, rounds_per_episode=5)
        batch_a = VectorMigrationEnv.from_market(market, 3, seed=0, **kwargs).reset()
        batch_b = VectorMigrationEnv.from_market(market, 3, seed=1, **kwargs).reset()
        for row_a in batch_a:
            for row_b in batch_b:
                assert not (row_a == row_b).all()

    def test_from_markets_env0_matches_scalar_seed(self, market):
        """from_markets keeps from_market's RNG-stream contract: env 0 on
        the root seed itself, envs >= 1 on SeedSequence children."""
        fleet = [market.with_unit_cost(c) for c in (5.0, 6.0, 7.0)]
        venv = VectorMigrationEnv.from_markets(
            fleet, seed=7, history_length=2, rounds_per_episode=5
        )
        scalar = MigrationGameEnv(
            fleet[0], seed=7, history_length=2, rounds_per_episode=5
        )
        assert venv.num_envs == 3
        assert (venv.reset()[0] == scalar.reset()).all()

    def test_heterogeneous_fleet_reports_price_envelope(self, market):
        fleet = [market.with_unit_cost(c) for c in (5.0, 8.0)]
        venv = VectorMigrationEnv.from_markets(
            fleet, seed=0, history_length=2, rounds_per_episode=5
        )
        assert venv.action_low == 5.0
        assert venv.action_high == market.config.max_price

    def test_scalar_action_broadcasts(self, market):
        venv = VectorMigrationEnv.from_market(
            market, 3, seed=0, history_length=2, rounds_per_episode=5
        )
        venv.reset()
        observations, rewards, dones, infos = venv.step(20.0)
        assert observations.shape == (3, venv.observation_dim)
        assert rewards.shape == (3,)
        assert len(infos) == 3
        assert all(i["price"] == 20.0 for i in infos)

    def test_properties_mirror_members(self, market):
        venv = VectorMigrationEnv.from_market(
            market, 2, seed=0, history_length=2, rounds_per_episode=5
        )
        assert venv.num_envs == 2
        assert venv.observation_dim == venv.envs[0].observation_dim
        assert venv.rounds_per_episode == 5
        assert venv.action_low == market.config.unit_cost
        assert venv.action_high == market.config.max_price

    def test_done_after_episode_and_step_past_end_rejected(self, market):
        venv = VectorMigrationEnv.from_market(
            market, 2, seed=0, history_length=2, rounds_per_episode=2
        )
        venv.reset()
        _, _, dones, _ = venv.step(20.0)
        assert not dones.any()
        _, _, dones, _ = venv.step(20.0)
        assert dones.all()
        with pytest.raises(EnvironmentError_):
            venv.step(20.0)

    def test_step_before_reset_rejected(self, market):
        venv = VectorMigrationEnv.from_market(
            market, 2, seed=0, history_length=2, rounds_per_episode=2
        )
        with pytest.raises(EnvironmentError_):
            venv.step(20.0)

    def test_validation(self, market):
        with pytest.raises(EnvironmentError_):
            VectorMigrationEnv([])
        with pytest.raises(EnvironmentError_):
            VectorMigrationEnv.from_market(market, 0)
        with pytest.raises(EnvironmentError_):
            VectorMigrationEnv.from_market(market, 2, seeds=[1])
        with pytest.raises(EnvironmentError_):
            VectorMigrationEnv.from_markets([])
        with pytest.raises(EnvironmentError_):
            VectorMigrationEnv.from_markets([market, market], seeds=[1])
        with pytest.raises(EnvironmentError_):
            VectorMigrationEnv(
                [
                    MigrationGameEnv(market, history_length=2, seed=0),
                    MigrationGameEnv(market, history_length=3, seed=1),
                ]
            )
        with pytest.raises(EnvironmentError_):
            VectorMigrationEnv(
                [
                    MigrationGameEnv(market, rounds_per_episode=5, seed=0),
                    MigrationGameEnv(market, rounds_per_episode=6, seed=1),
                ]
            )
