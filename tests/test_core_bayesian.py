"""Bayesian Stackelberg layer: scenario sampling and robust pricing.

The pins here are the contract the module advertises: the one-atom
distribution is *bitwise* the deterministic monopoly solve, and every
expected-utility number is *bitwise* the weighted sum of the per-scenario
scalar references (same reduction order).
"""

import numpy as np
import pytest

from repro.core.bayesian import (
    BayesianStackelbergMarket,
    ScenarioSpec,
    sample_market_distribution,
    sample_scenarios,
    scenario_market,
)
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.errors import ConfigurationError


def base_market() -> StackelbergMarket:
    return StackelbergMarket(paper_fig2_population())


class TestScenarioSpec:
    def test_defaults_valid(self):
        spec = ScenarioSpec()
        assert spec.num_scenarios == 16
        assert spec.capacity_jitter == 0.0

    def test_zero_jitter_allowed(self):
        ScenarioSpec(alpha_jitter=0.0, data_jitter=0.0, capacity_jitter=0.0)

    def test_jitter_bounds(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(alpha_jitter=-0.1)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(data_jitter=1.0)  # unit jitter admits factor 0
        with pytest.raises(ConfigurationError):
            ScenarioSpec(capacity_jitter=1.5)

    def test_num_scenarios_positive(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(num_scenarios=0)


class TestScenarioSampling:
    def test_deterministic_per_index(self):
        base = base_market()
        spec = ScenarioSpec(seed=3)
        first = scenario_market(base, spec, 5)
        second = scenario_market(base, spec, 5)
        assert [v.data_size_mb for v in first.vmus] == [
            v.data_size_mb for v in second.vmus
        ]
        assert first.config.max_bandwidth == second.config.max_bandwidth

    def test_indices_independent(self):
        """Per-index spawned streams: scenario k does not depend on
        whether scenarios 0..k-1 were drawn first."""
        base = base_market()
        spec = ScenarioSpec(seed=3)
        alone = scenario_market(base, spec, 7)
        in_sequence = sample_scenarios(base, ScenarioSpec(seed=3, num_scenarios=8))[7]
        assert [v.immersion_coef for v in alone.vmus] == [
            v.immersion_coef for v in in_sequence.vmus
        ]

    def test_base_market_unchanged(self):
        base = base_market()
        before = [v.data_size_mb for v in base.vmus]
        scenario_market(base, ScenarioSpec(seed=0), 0)
        assert [v.data_size_mb for v in base.vmus] == before

    def test_zero_jitter_reproduces_base(self):
        """uniform(1, 1) is exactly 1.0, so zero jitter is the identity."""
        base = base_market()
        spec = ScenarioSpec(alpha_jitter=0.0, data_jitter=0.0, capacity_jitter=0.0)
        scenario = scenario_market(base, spec, 4)
        assert [v.data_size_mb for v in scenario.vmus] == [
            v.data_size_mb for v in base.vmus
        ]
        assert [v.immersion_coef for v in scenario.vmus] == [
            v.immersion_coef for v in base.vmus
        ]
        assert scenario.config.max_bandwidth == base.config.max_bandwidth

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_market(base_market(), ScenarioSpec(), -1)

    def test_distribution_size(self):
        dist = sample_market_distribution(
            base_market(), ScenarioSpec(num_scenarios=5, seed=1)
        )
        assert dist.num_scenarios == 5
        np.testing.assert_array_equal(dist.weights, np.full(5, 0.2))


class TestBayesianMarketValidation:
    def test_needs_scenarios(self):
        with pytest.raises(ConfigurationError):
            BayesianStackelbergMarket([])

    def test_mismatched_unit_cost_rejected(self):
        base = base_market()
        other = StackelbergMarket(
            paper_fig2_population(),
            config=MarketConfig(unit_cost=base.config.unit_cost + 1.0),
        )
        with pytest.raises(ConfigurationError):
            BayesianStackelbergMarket([base, other])

    def test_weight_validation(self):
        base = base_market()
        with pytest.raises(ConfigurationError):
            BayesianStackelbergMarket([base, base], weights=[1.0])
        with pytest.raises(ConfigurationError):
            BayesianStackelbergMarket([base, base], weights=[1.0, 0.0])
        with pytest.raises(ConfigurationError):
            BayesianStackelbergMarket([base, base], weights=[1.0, float("nan")])

    def test_weights_normalised(self):
        base = base_market()
        market = BayesianStackelbergMarket([base, base], weights=[3.0, 1.0])
        np.testing.assert_array_equal(market.weights, [0.75, 0.25])


class TestExpectedUtility:
    def test_weighted_sum_of_scalar_references_bitwise(self):
        dist = sample_market_distribution(
            base_market(), ScenarioSpec(num_scenarios=4, seed=11)
        )
        weights = dist.weights
        for price in (8.0, 17.5, 25.0, 42.0):
            expected = weights[0] * dist.scenarios[0].msp_utility(price)
            for m in range(1, dist.num_scenarios):
                expected += weights[m] * dist.scenarios[m].msp_utility(price)
            assert dist.expected_utility(price) == expected

    def test_scenario_utilities_match_scalar(self):
        dist = sample_market_distribution(
            base_market(), ScenarioSpec(num_scenarios=3, seed=2)
        )
        price = 20.0
        values = dist.scenario_utilities(price)
        reference = np.array(
            [scenario.msp_utility(price) for scenario in dist.scenarios]
        )
        np.testing.assert_array_equal(values, reference)

    def test_vector_form_matches_scalar_form(self):
        dist = sample_market_distribution(
            base_market(), ScenarioSpec(num_scenarios=3, seed=9)
        )
        prices = np.array([10.0, 20.0, 30.0])
        vector = dist.expected_utilities(prices)
        scalar = np.array([dist.expected_utility(float(p)) for p in prices])
        np.testing.assert_array_equal(vector, scalar)


class TestBayesianEquilibrium:
    def test_one_atom_is_bitwise_deterministic_solve(self):
        """A point-mass distribution IS the deterministic game."""
        base = base_market()
        reference = base.equilibrium()
        bayes = BayesianStackelbergMarket([base]).equilibrium()
        assert bayes.price == reference.price
        assert bayes.expected_utility == reference.msp_utility
        assert bayes.scenario_utilities.shape == (1,)
        assert bayes.scenario_utilities[0] == reference.msp_utility

    def test_robust_price_beats_oracle_prices_in_expectation(self):
        """The robust price maximises E[utility]; each scenario's oracle
        price is just another feasible candidate."""
        dist = sample_market_distribution(
            base_market(), ScenarioSpec(num_scenarios=6, seed=4)
        )
        equilibrium = dist.equilibrium()
        oracles = dist.oracle_equilibria()
        for price, feasible in zip(oracles.prices, oracles.feasible):
            if not feasible:
                continue
            assert (
                equilibrium.expected_utility
                >= dist.expected_utility(float(price)) - 1e-9
            )

    def test_equilibrium_fields_consistent(self):
        dist = sample_market_distribution(
            base_market(), ScenarioSpec(num_scenarios=4, seed=8)
        )
        equilibrium = dist.equilibrium()
        assert equilibrium.feasible.shape == (4,)
        assert bool(equilibrium.feasible.all())
        assert dist.unit_cost <= equilibrium.price <= dist.max_price
        # Reported scenario utilities are the 1-D path at the robust price.
        np.testing.assert_array_equal(
            equilibrium.scenario_utilities,
            dist.scenario_utilities(equilibrium.price),
        )
        np.testing.assert_array_equal(equilibrium.weights, dist.weights)

    def test_unrefined_equilibrium_on_candidate_grid(self):
        dist = sample_market_distribution(
            base_market(), ScenarioSpec(num_scenarios=2, seed=5)
        )
        coarse = dist.equilibrium(refine=False)
        refined = dist.equilibrium(refine=True)
        assert refined.expected_utility >= coarse.expected_utility
