"""Fused training hot path: bitwise pins against the reference implementations.

Every fast path introduced by the flat-parameter/fused refactor is pinned
here against its seed counterpart, bit for bit:

- :class:`FlatSGD` / :class:`FlatAdam` vs the per-parameter ``SGD`` /
  ``Adam`` loops (including None-grad skips, clipping, and
  ``load_state_dict``-style data re-binds);
- :func:`global_grad_norm` / :func:`clip_grad_norm` vs the historical
  per-parameter Python reduction;
- the batched GAE/returns recursions vs the scalar per-trajectory ones;
- :class:`VectorRolloutStorage` pooling vs per-env ``RolloutBuffer``
  finalize + ``concatenate_minibatches``;
- :class:`FusedActorCritic` act/value/update vs the autograd
  ``PPOAgent`` reference path.
"""

import math

import numpy as np
import pytest

from repro.drl.buffer import (
    MiniBatch,
    RolloutBuffer,
    VectorRolloutStorage,
    concatenate_minibatches,
)
from repro.drl.fused import FusedActorCritic
from repro.drl.gae import (
    discounted_returns,
    discounted_returns_batch,
    generalized_advantages,
    generalized_advantages_batch,
)
from repro.drl.policy import ActorCritic
from repro.drl.ppo import PPOAgent, PPOConfig
from repro.errors import ConfigurationError, NeuralNetworkError
from repro.nn.optim import (
    SGD,
    Adam,
    FlatAdam,
    FlatSGD,
    clip_grad_norm,
    global_grad_norm,
)
from repro.nn.tensor import Tensor

SHAPES = [(3,), (4, 3), (4,), (1, 4), (1,)]


def make_params(seed):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.normal(size=shape), requires_grad=True) for shape in SHAPES]


def set_grads(params, rng, *, none_indices=()):
    for index, parameter in enumerate(params):
        if index in none_indices:
            parameter.grad = None
        else:
            parameter.grad = rng.normal(size=parameter.data.shape)


def assert_params_equal(left, right):
    for a, b in zip(left, right):
        np.testing.assert_array_equal(a.data, b.data)


class TestFlatOptimizersBitwise:
    def _run_pair(self, ref_opt_factory, flat_opt_factory, *, steps=12, clip=None):
        ref_params = make_params(seed=0)
        flat_params = make_params(seed=0)
        ref_opt = ref_opt_factory(ref_params)
        flat_opt = flat_opt_factory(flat_params)
        for step in range(steps):
            rng_ref = np.random.default_rng(100 + step)
            rng_flat = np.random.default_rng(100 + step)
            none_indices = (1, 3) if step % 4 == 2 else ()
            set_grads(ref_params, rng_ref, none_indices=none_indices)
            set_grads(flat_params, rng_flat, none_indices=none_indices)
            if clip is not None:
                ref_norm = clip_grad_norm(
                    [p for p in ref_params if p.grad is not None], clip
                )
                ref_opt.step()
                flat_norm = flat_opt.fused_step(max_grad_norm=clip)
                assert flat_norm == ref_norm
            else:
                ref_opt.step()
                flat_opt.step()
            assert_params_equal(ref_params, flat_params)

    def test_flat_adam_matches_adam(self):
        self._run_pair(
            lambda p: Adam(p, learning_rate=0.01),
            lambda p: FlatAdam(p, learning_rate=0.01),
        )

    def test_flat_adam_matches_adam_with_clipping(self):
        self._run_pair(
            lambda p: Adam(p, learning_rate=0.01),
            lambda p: FlatAdam(p, learning_rate=0.01),
            clip=0.5,
        )

    def test_flat_sgd_matches_sgd_with_momentum(self):
        self._run_pair(
            lambda p: SGD(p, learning_rate=0.05, momentum=0.9),
            lambda p: FlatSGD(p, learning_rate=0.05, momentum=0.9),
        )

    def test_flat_sgd_matches_sgd_with_clipping(self):
        self._run_pair(
            lambda p: SGD(p, learning_rate=0.05, momentum=0.9),
            lambda p: FlatSGD(p, learning_rate=0.05, momentum=0.9),
            clip=0.25,
        )

    def test_parameters_view_into_flat_buffer(self):
        params = make_params(seed=1)
        opt = FlatAdam(params, learning_rate=0.01)
        flat = opt.flat_parameters
        base_addr = flat.__array_interface__["data"][0]
        offset = 0
        for parameter, shape in zip(params, SHAPES):
            size = int(np.prod(shape))
            np.testing.assert_array_equal(
                parameter.data.ravel(), flat[offset : offset + size]
            )
            assert parameter.data.base is not None
            # segment starts keep standalone-allocation alignment (64-byte)
            view_addr = parameter.data.__array_interface__["data"][0]
            assert (view_addr - base_addr) % 64 == 0
            offset += -(-size // 8) * 8
        assert flat.size == offset

    def test_data_rebind_is_readopted(self):
        """A ``load_state_dict``-style ``parameter.data = fresh_array``
        re-bind must be adopted back into the flat buffer on the next step."""
        ref_params = make_params(seed=2)
        flat_params = make_params(seed=2)
        ref_opt = Adam(ref_params, learning_rate=0.01)
        flat_opt = FlatAdam(flat_params, learning_rate=0.01)
        rng = np.random.default_rng(7)
        replacement = [rng.normal(size=shape) for shape in SHAPES]
        for parameter, fresh in zip(ref_params, replacement):
            parameter.data = fresh.copy()
        for parameter, fresh in zip(flat_params, replacement):
            parameter.data = fresh.copy()
        set_grads(ref_params, np.random.default_rng(8))
        set_grads(flat_params, np.random.default_rng(8))
        ref_opt.step()
        flat_opt.step()
        assert_params_equal(ref_params, flat_params)
        # The flat optimiser's view is re-bound as parameter.data again.
        for parameter in flat_params:
            assert parameter.data.base is flat_opt.flat_parameters.base or (
                parameter.data.base is not None
            )

    def test_step_count_advances_like_reference(self):
        """Adam's bias correction depends on the step counter advancing
        even when no parameter has a gradient."""
        ref_params = make_params(seed=3)
        flat_params = make_params(seed=3)
        ref_opt = Adam(ref_params, learning_rate=0.01)
        flat_opt = FlatAdam(flat_params, learning_rate=0.01)
        set_grads(ref_params, np.random.default_rng(1))
        set_grads(flat_params, np.random.default_rng(1))
        ref_opt.step()
        flat_opt.step()
        set_grads(ref_params, np.random.default_rng(2), none_indices=range(len(SHAPES)))
        set_grads(flat_params, np.random.default_rng(2), none_indices=range(len(SHAPES)))
        ref_opt.step()
        flat_opt.step()
        set_grads(ref_params, np.random.default_rng(3))
        set_grads(flat_params, np.random.default_rng(3))
        ref_opt.step()
        flat_opt.step()
        assert ref_opt.step_count == flat_opt.step_count == 3
        assert_params_equal(ref_params, flat_params)

    def test_validation(self):
        params = make_params(seed=4)
        with pytest.raises(NeuralNetworkError):
            FlatAdam(params, learning_rate=-1.0)
        with pytest.raises(NeuralNetworkError):
            FlatAdam(params, learning_rate=0.1, beta1=1.0)
        with pytest.raises(NeuralNetworkError):
            FlatAdam(params, learning_rate=0.1, epsilon=0.0)
        with pytest.raises(NeuralNetworkError):
            FlatSGD(params, learning_rate=0.1, momentum=1.0)
        with pytest.raises(NeuralNetworkError):
            FlatSGD([], learning_rate=0.1)
        opt = FlatAdam(make_params(seed=4), learning_rate=0.1)
        with pytest.raises(NeuralNetworkError):
            opt.fused_step(max_grad_norm=0.0)


class TestGlobalGradNorm:
    def test_matches_python_reduction_bitwise(self):
        rng = np.random.default_rng(0)
        grads = [rng.normal(size=shape) * 10.0 for shape in SHAPES]
        reference = math.sqrt(sum(float((g**2).sum()) for g in grads))
        assert global_grad_norm(grads) == reference

    def test_empty_is_zero(self):
        assert global_grad_norm([]) == 0.0

    def test_clip_grad_norm_matches_historical_loop(self):
        rng = np.random.default_rng(1)
        params = make_params(seed=5)
        set_grads(params, rng)
        reference = make_params(seed=5)
        for parameter, source in zip(reference, params):
            parameter.grad = source.grad.copy()
        max_norm = 0.5
        # Historical implementation: per-parameter float round trip.
        total = math.sqrt(
            sum(float((p.grad**2).sum()) for p in reference if p.grad is not None)
        )
        if total > max_norm and total > 0.0:
            scale = max_norm / total
            for parameter in reference:
                parameter.grad *= scale
        norm = clip_grad_norm(params, max_norm)
        assert norm == total
        for parameter, expected in zip(params, reference):
            np.testing.assert_array_equal(parameter.grad, expected.grad)

    def test_small_norm_untouched(self):
        params = make_params(seed=6)
        for parameter in params:
            parameter.grad = np.zeros_like(parameter.data)
        params[0].grad = np.array([1e-3, 0.0, 0.0])
        before = [p.grad.copy() for p in params]
        clip_grad_norm(params, 10.0)
        for parameter, expected in zip(params, before):
            np.testing.assert_array_equal(parameter.grad, expected)


class TestBatchGae:
    @pytest.mark.parametrize("gamma,lam", [(0.0, 1.0), (0.9, 1.0), (0.99, 0.95)])
    def test_rows_match_scalar_recursion_bitwise(self, gamma, lam):
        rng = np.random.default_rng(0)
        num_envs, horizon = 5, 17
        rewards = rng.normal(size=(num_envs, horizon)) * 3.0
        values = rng.normal(size=(num_envs, horizon))
        bootstraps = rng.normal(size=num_envs)
        advantages = generalized_advantages_batch(
            rewards, values, gamma, lam, bootstrap_values=bootstraps
        )
        returns = discounted_returns_batch(
            rewards, gamma, bootstrap_values=bootstraps
        )
        for env in range(num_envs):
            np.testing.assert_array_equal(
                advantages[env],
                generalized_advantages(
                    rewards[env],
                    values[env],
                    gamma,
                    lam,
                    bootstrap_value=float(bootstraps[env]),
                ),
            )
            np.testing.assert_array_equal(
                returns[env],
                discounted_returns(
                    rewards[env], gamma, bootstrap_value=float(bootstraps[env])
                ),
            )

    def test_default_bootstraps_are_zeros(self):
        rng = np.random.default_rng(1)
        rewards = rng.normal(size=(3, 9))
        values = rng.normal(size=(3, 9))
        np.testing.assert_array_equal(
            generalized_advantages_batch(rewards, values, 0.9, 0.95),
            generalized_advantages_batch(
                rewards, values, 0.9, 0.95, bootstrap_values=np.zeros(3)
            ),
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            discounted_returns_batch(np.zeros(4), 0.9)
        with pytest.raises(ValueError):
            generalized_advantages_batch(np.zeros((2, 4)), np.zeros((2, 5)), 0.9, 1.0)
        with pytest.raises(ValueError):
            generalized_advantages_batch(
                np.zeros((2, 4)), np.zeros((2, 4)), 0.9, 1.0, bootstrap_values=np.zeros(3)
            )


class TestVectorRolloutStorage:
    def _fill(self, storage, buffers, rng, rounds):
        num_envs = storage.num_envs
        obs_dim = 4
        action_dim = 2
        for _ in range(rounds):
            observations = rng.normal(size=(num_envs, obs_dim))
            actions = rng.normal(size=(num_envs, action_dim))
            rewards = rng.normal(size=num_envs)
            log_probs = rng.normal(size=num_envs)
            values = rng.normal(size=num_envs)
            storage.add_round(observations, actions, rewards, log_probs, values)
            for env, buffer in enumerate(buffers):
                buffer.add(
                    observations[env],
                    actions[env],
                    float(rewards[env]),
                    float(log_probs[env]),
                    float(values[env]),
                )

    def test_pooled_matches_per_env_buffers_bitwise(self):
        num_envs, capacity = 3, 7
        storage = VectorRolloutStorage(
            num_envs, capacity, 4, 2, gamma=0.9, lam=0.95
        )
        buffers = [RolloutBuffer(gamma=0.9, lam=0.95) for _ in range(num_envs)]
        rng = np.random.default_rng(0)
        self._fill(storage, buffers, rng, capacity)
        bootstraps = rng.normal(size=num_envs)
        for env, buffer in enumerate(buffers):
            buffer.finalize(float(bootstraps[env]))
        pooled = storage.pooled(bootstraps)
        reference = concatenate_minibatches([b.stacked() for b in buffers])
        for name in ("observations", "actions", "old_log_probs", "advantages", "returns"):
            np.testing.assert_array_equal(
                getattr(pooled, name), getattr(reference, name), err_msg=name
            )

    def test_partial_fill_and_reuse(self):
        storage = VectorRolloutStorage(2, 5, 4, 2, gamma=0.0)
        buffers = [RolloutBuffer(gamma=0.0) for _ in range(2)]
        rng = np.random.default_rng(1)
        self._fill(storage, buffers, rng, 3)
        pooled = storage.pooled(np.zeros(2))
        assert pooled.observations.shape == (6, 4)
        storage.clear()
        assert len(storage) == 0
        fresh_buffers = [RolloutBuffer(gamma=0.0) for _ in range(2)]
        self._fill(storage, fresh_buffers, rng, 2)
        for buffer in fresh_buffers:
            buffer.finalize(0.0)
        pooled = storage.pooled(np.zeros(2))
        reference = concatenate_minibatches([b.stacked() for b in fresh_buffers])
        np.testing.assert_array_equal(pooled.observations, reference.observations)
        np.testing.assert_array_equal(pooled.advantages, reference.advantages)

    def test_capacity_overflow_rejected(self):
        storage = VectorRolloutStorage(2, 1, 4, 2, gamma=0.0)
        args = (np.zeros((2, 4)), np.zeros((2, 2)), np.zeros(2), np.zeros(2), np.zeros(2))
        storage.add_round(*args)
        with pytest.raises(ConfigurationError):
            storage.add_round(*args)

    def test_empty_pool_rejected(self):
        storage = VectorRolloutStorage(2, 3, 4, 2, gamma=0.0)
        with pytest.raises(ConfigurationError):
            storage.pooled(np.zeros(2))

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            VectorRolloutStorage(0, 3, 4, 2, gamma=0.0)
        with pytest.raises(ConfigurationError):
            VectorRolloutStorage(2, 3, 4, 2, gamma=1.5)


def random_minibatch(rng, batch_size, obs_dim, action_dim):
    return MiniBatch(
        observations=rng.normal(size=(batch_size, obs_dim)),
        actions=rng.normal(size=(batch_size, action_dim)),
        old_log_probs=rng.normal(size=batch_size),
        advantages=rng.normal(size=batch_size) * 2.0,
        returns=rng.normal(size=batch_size),
    )


class TestFusedActorCritic:
    def test_ppo_agent_compiles_fused_by_default(self):
        net = ActorCritic(obs_dim=6, hidden_sizes=(16, 16), seed=0)
        agent = PPOAgent(net, PPOConfig(learning_rate=1e-3))
        assert agent.fused
        legacy = PPOAgent(
            ActorCritic(obs_dim=6, hidden_sizes=(16, 16), seed=0),
            PPOConfig(learning_rate=1e-3),
            fused=False,
        )
        assert not legacy.fused

    def test_compile_rejects_foreign_architectures(self):
        assert FusedActorCritic.compile(object()) is None
        net = ActorCritic(obs_dim=6, seed=0)
        net.log_std.requires_grad = False
        assert FusedActorCritic.compile(net) is None

    def test_act_batch_bitwise(self):
        net = ActorCritic(obs_dim=5, hidden_sizes=(16, 16), seed=0)
        fused = FusedActorCritic.compile(net)
        assert fused is not None
        rng = np.random.default_rng(0)
        observations = rng.normal(size=(7, 5))
        for deterministic in (False, True):
            expected = net.act_batch(
                observations, seed=42, deterministic=deterministic
            )
            actual = fused.act_batch(
                observations, seed=42, deterministic=deterministic
            )
            for a, b in zip(actual, expected):
                np.testing.assert_array_equal(a, b)

    def test_act_scalar_bitwise(self):
        net = ActorCritic(obs_dim=5, seed=0)
        fused_agent = PPOAgent(net, PPOConfig(learning_rate=1e-3))
        legacy_agent = PPOAgent(
            ActorCritic(obs_dim=5, seed=0), PPOConfig(learning_rate=1e-3), fused=False
        )
        observation = np.linspace(-1.0, 1.0, 5)
        raw_f, logp_f, value_f = fused_agent.act(observation, seed=3)
        raw_l, logp_l, value_l = legacy_agent.act(observation, seed=3)
        np.testing.assert_array_equal(raw_f, raw_l)
        assert logp_f == logp_l
        assert value_f == value_l

    def test_value_batch_bitwise(self):
        net = ActorCritic(obs_dim=5, seed=0)
        fused_agent = PPOAgent(net, PPOConfig(learning_rate=1e-3))
        legacy_agent = PPOAgent(
            ActorCritic(obs_dim=5, seed=0), PPOConfig(learning_rate=1e-3), fused=False
        )
        rng = np.random.default_rng(1)
        observations = rng.normal(size=(9, 5))
        np.testing.assert_array_equal(
            fused_agent.value_batch(observations),
            legacy_agent.value_batch(observations),
        )

    @pytest.mark.parametrize(
        "config",
        [
            PPOConfig(learning_rate=1e-3),
            PPOConfig(learning_rate=1e-3, entropy_coef=0.01),
            PPOConfig(learning_rate=1e-3, normalize_advantages=False),
            PPOConfig(learning_rate=1e-3, clip_epsilon=0.05, value_coef=1.0),
        ],
    )
    def test_update_bitwise(self, config):
        """The fused update must reproduce the autograd reference exactly:
        identical stats and identical post-step parameters, step after step."""
        obs_dim, action_dim = 6, 1
        fused_agent = PPOAgent(
            ActorCritic(obs_dim=obs_dim, hidden_sizes=(16, 16), seed=0), config
        )
        legacy_agent = PPOAgent(
            ActorCritic(obs_dim=obs_dim, hidden_sizes=(16, 16), seed=0),
            config,
            fused=False,
        )
        assert fused_agent.fused and not legacy_agent.fused
        rng = np.random.default_rng(0)
        for step in range(8):
            batch = random_minibatch(rng, 12, obs_dim, action_dim)
            fused_stats = fused_agent.update(batch)
            legacy_stats = legacy_agent.update(batch)
            assert fused_stats == legacy_stats, f"step {step}"
            assert_params_equal(
                list(fused_agent.network.parameters()),
                list(legacy_agent.network.parameters()),
            )

    def test_update_single_sample_batch(self):
        """size-1 batches skip advantage normalisation in both paths."""
        config = PPOConfig(learning_rate=1e-3)
        fused_agent = PPOAgent(ActorCritic(obs_dim=4, seed=0), config)
        legacy_agent = PPOAgent(
            ActorCritic(obs_dim=4, seed=0), config, fused=False
        )
        rng = np.random.default_rng(2)
        batch = random_minibatch(rng, 1, 4, 1)
        assert fused_agent.update(batch) == legacy_agent.update(batch)

    def test_bad_observation_shape_rejected(self):
        net = ActorCritic(obs_dim=5, seed=0)
        fused = FusedActorCritic.compile(net)
        with pytest.raises(ConfigurationError):
            fused.value_batch(np.zeros((3, 4)))
        with pytest.raises(ConfigurationError):
            fused.act_batch(np.zeros((3, 4)))
