"""Serialization tests: JSON/CSV round-trips and numpy coercion."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.utils import serialization as ser


class TestToJsonable:
    def test_numpy_scalars(self):
        assert ser.to_jsonable(np.float64(1.5)) == 1.5
        assert ser.to_jsonable(np.int32(3)) == 3
        assert ser.to_jsonable(np.bool_(True)) is True

    def test_numpy_array(self):
        assert ser.to_jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_nested_structures(self):
        payload = {"a": (np.float32(1.0), [np.int64(2)]), "b": None}
        assert ser.to_jsonable(payload) == {"a": [1.0, [2]], "b": None}

    def test_unserialisable_rejected(self):
        with pytest.raises(ExperimentError):
            ser.to_jsonable(object())

    def test_path_becomes_string(self, tmp_path):
        assert ser.to_jsonable(tmp_path) == str(tmp_path)


class TestJsonIo:
    def test_round_trip(self, tmp_path):
        payload = {"series": [1.0, 2.0, 3.0], "meta": {"n": 2}}
        target = ser.save_json(tmp_path / "out.json", payload)
        assert ser.load_json(target) == payload

    def test_creates_parents(self, tmp_path):
        target = ser.save_json(tmp_path / "deep" / "dir" / "x.json", [1])
        assert target.exists()

    def test_numpy_payload(self, tmp_path):
        target = ser.save_json(tmp_path / "np.json", {"v": np.arange(3)})
        assert ser.load_json(target) == {"v": [0, 1, 2]}


class TestCsvIo:
    def test_round_trip(self, tmp_path):
        headers = ["cost", "utility"]
        rows = [[5.0, 6.44], [9.0, 5.41]]
        target = ser.save_csv(tmp_path / "t.csv", headers, rows)
        read_headers, read_rows = ser.load_csv(target)
        assert read_headers == headers
        assert [[float(c) for c in row] for row in read_rows] == rows

    def test_ragged_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            ser.save_csv(tmp_path / "bad.csv", ["a", "b"], [[1]])

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ExperimentError, match="empty"):
            ser.load_csv(empty)
