"""Autograd tests: every op's gradient against central finite differences."""

import numpy as np
import pytest

from repro.errors import GradientError
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


def gradcheck(fn, *arrays, eps=1e-6, rtol=1e-5, atol=1e-7):
    """Compare analytic gradients of ``fn(*tensors).sum()`` to numeric."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = fn(*tensors)
    loss = out.sum() if out.size > 1 else out
    loss.backward()
    for index, array in enumerate(arrays):
        numeric = np.zeros_like(np.asarray(array, dtype=np.float64))
        flat = numeric.reshape(-1)
        base = np.asarray(array, dtype=np.float64)
        for j in range(base.size):
            plus = base.copy().reshape(-1)
            plus[j] += eps
            minus = base.copy().reshape(-1)
            minus[j] -= eps
            args_p = [
                Tensor(plus.reshape(base.shape)) if k == index else Tensor(arrays[k])
                for k in range(len(arrays))
            ]
            args_m = [
                Tensor(minus.reshape(base.shape)) if k == index else Tensor(arrays[k])
                for k in range(len(arrays))
            ]
            f_p = fn(*args_p)
            f_m = fn(*args_m)
            f_p = f_p.sum() if f_p.size > 1 else f_p
            f_m = f_m.sum() if f_m.size > 1 else f_m
            flat[j] = (f_p.item() - f_m.item()) / (2.0 * eps)
        np.testing.assert_allclose(
            tensors[index].grad, numeric, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch for input {index}",
        )


RNG = np.random.default_rng(0)
A = RNG.normal(size=(3, 4))
B = RNG.normal(size=(3, 4))
M1 = RNG.normal(size=(3, 4))
M2 = RNG.normal(size=(4, 2))
POS = np.abs(RNG.normal(size=(3, 4))) + 0.5


class TestArithmeticGradients:
    def test_add(self):
        gradcheck(lambda x, y: x + y, A, B)

    def test_add_broadcast_bias(self):
        gradcheck(lambda x, b: x + b, A, RNG.normal(size=(4,)))

    def test_sub(self):
        gradcheck(lambda x, y: x - y, A, B)

    def test_rsub_scalar(self):
        gradcheck(lambda x: 3.0 - x, A)

    def test_mul(self):
        gradcheck(lambda x, y: x * y, A, B)

    def test_mul_scalar_broadcast(self):
        gradcheck(lambda x, s: x * s, A, np.array([2.0]))

    def test_div(self):
        gradcheck(lambda x, y: x / y, A, POS)

    def test_rdiv_scalar(self):
        gradcheck(lambda x: 2.0 / x, POS)

    def test_neg(self):
        gradcheck(lambda x: -x, A)

    def test_pow(self):
        gradcheck(lambda x: x**3.0, A)

    def test_pow_half_on_positive(self):
        gradcheck(lambda x: x**0.5, POS, rtol=1e-4)

    def test_matmul(self):
        gradcheck(lambda x, y: x @ y, M1, M2)

    def test_pow_non_scalar_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor(A) ** Tensor(B)


class TestNonlinearityGradients:
    def test_tanh(self):
        gradcheck(lambda x: x.tanh(), A)

    def test_relu_away_from_kink(self):
        shifted = A + np.where(A >= 0, 0.5, -0.5)  # keep off the kink
        gradcheck(lambda x: x.relu(), shifted)

    def test_exp(self):
        gradcheck(lambda x: x.exp(), A, rtol=1e-4)

    def test_log(self):
        gradcheck(lambda x: x.log(), POS)

    def test_sigmoid(self):
        gradcheck(lambda x: x.sigmoid(), A)

    def test_clamp_interior_and_exterior(self):
        data = np.array([[-2.0, -0.5, 0.5, 2.0]])
        tensor = Tensor(data, requires_grad=True)
        tensor.clamp(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(tensor.grad, [[0.0, 1.0, 1.0, 0.0]])

    def test_clamp_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Tensor(A).clamp(1.0, -1.0)

    def test_minimum_routes_gradient(self):
        x = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        y = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        x.minimum(y).sum().backward()
        np.testing.assert_array_equal(x.grad, [1.0, 0.0])
        np.testing.assert_array_equal(y.grad, [0.0, 1.0])

    def test_minimum_tie_splits(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = Tensor(np.array([2.0]), requires_grad=True)
        x.minimum(y).sum().backward()
        assert x.grad[0] == pytest.approx(0.5)
        assert y.grad[0] == pytest.approx(0.5)


class TestReductionGradients:
    def test_sum_all(self):
        gradcheck(lambda x: x.sum(), A)

    def test_sum_axis0(self):
        gradcheck(lambda x: x.sum(axis=0), A)

    def test_sum_axis1_keepdims(self):
        gradcheck(lambda x: x.sum(axis=1, keepdims=True), A)

    def test_mean_all(self):
        gradcheck(lambda x: x.mean(), A)

    def test_mean_axis(self):
        gradcheck(lambda x: x.mean(axis=0), A)

    def test_reshape(self):
        gradcheck(lambda x: (x.reshape(4, 3) * 2.0), A)

    def test_squeeze(self):
        data = RNG.normal(size=(3, 1))
        gradcheck(lambda x: x.squeeze(-1), data)

    def test_squeeze_wrong_axis_rejected(self):
        with pytest.raises(ValueError):
            Tensor(A).squeeze(-1)

    def test_concatenate(self):
        gradcheck(lambda x, y: Tensor.concatenate([x, y], axis=1), A, B)


class TestGraphMechanics:
    def test_shared_subgraph_accumulates(self):
        # y = x*x + x: dy/dx = 2x + 1, with x used twice.
        x = Tensor(np.array([3.0]), requires_grad=True)
        (x * x + x).backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_diamond_graph(self):
        # z = (x + x) * (x * 2): dz/dx = 8x.
        x = Tensor(np.array([1.5]), requires_grad=True)
        ((x + x) * (x * 2.0)).backward()
        assert x.grad[0] == pytest.approx(12.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y * 1.0001
        y.backward()
        assert x.grad is not None

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor(A, requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2.0).backward()

    def test_backward_with_seed_gradient(self):
        x = Tensor(A, requires_grad=True)
        (x * 2.0).backward(np.ones_like(A))
        np.testing.assert_allclose(x.grad, 2.0 * np.ones_like(A))

    def test_backward_on_leaf_without_grad_rejected(self):
        with pytest.raises(GradientError):
            Tensor(A).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(A, requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor(A, requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_repeated_backward_accumulates(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        assert x.grad[0] == pytest.approx(5.0)

    def test_item_on_nonscalar_rejected(self):
        with pytest.raises(ValueError):
            Tensor(A).item()

    def test_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4.0
        assert Tensor(A).ndim == 2
