"""Example-script smoke tests: every shipped example must actually run.

The slow DRL examples are exercised through their underlying library
functions elsewhere (tests/test_integration.py, benchmarks/); here we run
the fast ones end-to-end as real subprocesses, so import errors, stale
APIs, or broken __main__ blocks in `examples/` fail CI.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_market.py",
    "highway_migration.py",
    "multi_msp_competition.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_equilibrium():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "25.34" in result.stdout  # the paper-anchored price

def test_highway_example_reports_aotm():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "highway_migration.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "AoTM" in result.stdout
    assert "invariants hold" in result.stdout


def test_all_examples_present():
    """The README promises six runnable examples."""
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts >= {
        "quickstart.py",
        "train_drl_pricing.py",
        "cost_sweep.py",
        "highway_migration.py",
        "custom_market.py",
        "multi_msp_competition.py",
    }
