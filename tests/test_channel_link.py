"""Channel/link tests: the paper's radio numbers and model behaviour."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.link import LinkBudget, RsuLink, paper_link
from repro.channel.pathloss import FreeSpacePathLoss, LogDistancePathLoss
from repro.errors import ConfigurationError


class TestPaperLink:
    def test_spectral_efficiency_matches_paper(self):
        # log2(1 + 4e11) ≈ 38.54 bit/s/Hz with the Sec. V-A parameters.
        assert paper_link().spectral_efficiency == pytest.approx(38.54, abs=0.01)

    def test_snr_value(self):
        assert paper_link().budget.snr == pytest.approx(4e11, rel=1e-9)

    def test_snr_db(self):
        assert paper_link().budget.snr_db == pytest.approx(116.02, abs=0.01)

    def test_received_power(self):
        # 10 W * 0.01 * 500^-2 = 4e-7 W.
        assert paper_link().budget.received_power_w == pytest.approx(4e-7)

    def test_transmission_rate_linear_in_bandwidth(self):
        link = paper_link()
        assert link.transmission_rate(2.0) == pytest.approx(
            2.0 * link.spectral_efficiency
        )

    def test_transfer_time_is_eq1(self):
        link = paper_link()
        # A = D / (b SE).
        assert link.transfer_time(2.0, 0.5) == pytest.approx(
            2.0 / (0.5 * link.spectral_efficiency)
        )

    def test_zero_bandwidth_gives_infinite_aotm(self):
        assert paper_link().transfer_time(1.0, 0.0) == math.inf

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_link().transmission_rate(-1.0)


class TestLinkVariants:
    def test_with_distance_farther_is_worse(self):
        near = paper_link()
        far = near.with_distance(1000.0)
        assert far.spectral_efficiency < near.spectral_efficiency
        assert far.budget.distance_m == 1000.0

    def test_with_fading_gain(self):
        base = paper_link()
        boosted = base.with_fading_gain(2.0)
        assert boosted.spectral_efficiency > base.spectral_efficiency
        faded = base.with_fading_gain(0.1)
        assert faded.spectral_efficiency < base.spectral_efficiency

    @given(st.floats(min_value=10.0, max_value=10000.0))
    def test_se_monotone_decreasing_in_distance(self, distance):
        link = paper_link()
        closer = link.with_distance(distance)
        farther = link.with_distance(distance * 2.0)
        assert farther.spectral_efficiency < closer.spectral_efficiency


class TestLinkBudgetValidation:
    def test_rejects_nonpositive_power(self):
        with pytest.raises(ConfigurationError):
            LinkBudget(
                transmit_power_w=0.0,
                noise_power_w=1e-18,
                path_loss=LogDistancePathLoss(0.01, 2.0),
                distance_m=500.0,
            )

    def test_rejects_nonpositive_fading(self):
        with pytest.raises(ConfigurationError):
            LinkBudget(
                transmit_power_w=1.0,
                noise_power_w=1e-18,
                path_loss=LogDistancePathLoss(0.01, 2.0),
                distance_m=500.0,
                fading_gain=0.0,
            )


class TestPathLossModels:
    def test_log_distance_anchor(self):
        model = LogDistancePathLoss(reference_gain=0.01, exponent=2.0)
        assert model.gain(500.0) == pytest.approx(0.01 / 250_000.0)

    def test_log_distance_gain_db(self):
        model = LogDistancePathLoss(reference_gain=1.0, exponent=2.0)
        assert model.gain_db(10.0) == pytest.approx(-20.0)

    def test_log_distance_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(reference_gain=0.0, exponent=2.0)
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(reference_gain=1.0, exponent=-1.0)

    def test_log_distance_rejects_zero_distance(self):
        model = LogDistancePathLoss(reference_gain=0.01, exponent=2.0)
        with pytest.raises(ConfigurationError):
            model.gain(0.0)

    def test_free_space_friis(self):
        model = FreeSpacePathLoss(frequency_hz=2.4e9)
        wavelength = 299_792_458.0 / 2.4e9
        expected = (wavelength / (4.0 * math.pi * 100.0)) ** 2
        assert model.gain(100.0) == pytest.approx(expected)

    @given(st.floats(min_value=1.0, max_value=1e5))
    def test_free_space_inverse_square(self, distance):
        model = FreeSpacePathLoss(frequency_hz=5.9e9)  # DSRC band
        assert model.gain(distance) / model.gain(2.0 * distance) == pytest.approx(
            4.0, rel=1e-9
        )
