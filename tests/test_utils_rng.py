"""RNG-management tests: determinism, stream independence, coercion."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceRegistry, as_generator, spawn_children


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).uniform(size=5)
        b = as_generator(42).uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).uniform(size=5)
        b = as_generator(2).uniform(size=5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        out = as_generator(seq)
        assert isinstance(out, np.random.Generator)


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_children_reproducible(self):
        a = [g.uniform() for g in spawn_children(123, 3)]
        b = [g.uniform() for g in spawn_children(123, 3)]
        assert a == b

    def test_children_independent(self):
        children = spawn_children(123, 2)
        a = children[0].uniform(size=100)
        b = children[1].uniform(size=100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5  # not identical streams

    def test_children_from_generator(self):
        gen = np.random.default_rng(9)
        kids = spawn_children(gen, 2)
        assert len(kids) == 2


class TestSeedSequenceRegistry:
    def test_same_name_same_object(self):
        reg = SeedSequenceRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_different_names_different_streams(self):
        reg = SeedSequenceRegistry(0)
        a = reg.stream("mobility").uniform(size=50)
        b = reg.stream("drl").uniform(size=50)
        assert not np.array_equal(a, b)

    def test_reproducible_across_registries(self):
        a = SeedSequenceRegistry(7).stream("x").uniform(size=10)
        b = SeedSequenceRegistry(7).stream("x").uniform(size=10)
        np.testing.assert_array_equal(a, b)

    def test_order_independent(self):
        """Stream 'x' draws the same values regardless of which other
        streams were created first — the key anti-bug property."""
        reg1 = SeedSequenceRegistry(7)
        reg1.stream("a")
        x1 = reg1.stream("x").uniform(size=10)
        reg2 = SeedSequenceRegistry(7)
        x2 = reg2.stream("x").uniform(size=10)
        np.testing.assert_array_equal(x1, x2)

    def test_names_tracking(self):
        reg = SeedSequenceRegistry(0)
        reg.stream("a")
        reg.stream("b")
        assert set(reg.names()) == {"a", "b"}

    def test_root_seed_property(self):
        assert SeedSequenceRegistry(5).root_seed == 5
        assert SeedSequenceRegistry().root_seed is None

    def test_repr_mentions_streams(self):
        reg = SeedSequenceRegistry(1)
        reg.stream("chan")
        assert "chan" in repr(reg)
