"""Mechanism-interface tests: history bookkeeping and round loops."""

import pytest

from repro.baselines import FixedPricing, OraclePricing, RandomPricing
from repro.core.mechanism import GameHistory, PricingPolicy, RoundRecord, run_rounds
from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population


@pytest.fixture
def market():
    return StackelbergMarket(paper_fig2_population())


class TestGameHistory:
    def _record(self, i, price, utility):
        return RoundRecord(
            round_index=i, price=price, demands=(0.1, 0.2), msp_utility=utility
        )

    def test_empty_history(self):
        history = GameHistory()
        assert len(history) == 0
        assert history.best_price is None
        assert history.best_utility == float("-inf")

    def test_best_tracking(self):
        history = GameHistory()
        history.append(self._record(0, 10.0, 3.0))
        history.append(self._record(1, 25.0, 6.4))
        history.append(self._record(2, 40.0, 5.0))
        assert history.best_utility == 6.4
        assert history.best_price == 25.0

    def test_last_returns_tail(self):
        history = GameHistory()
        for i in range(5):
            history.append(self._record(i, 10.0 + i, 1.0))
        tail = history.last(2)
        assert [r.round_index for r in tail] == [3, 4]

    def test_last_zero(self):
        history = GameHistory()
        history.append(self._record(0, 10.0, 1.0))
        assert history.last(0) == []

    def test_last_negative_rejected(self):
        with pytest.raises(ValueError):
            GameHistory().last(-1)

    def test_empty_history_last_is_empty_list(self):
        """Regression: last() on an empty history must be [] for any count,
        never an error or a non-list, so callers need no guard."""
        history = GameHistory()
        assert history.last(0) == []
        assert history.last(1) == []
        assert history.last(10) == []

    def test_last_larger_than_history_returns_all(self):
        history = GameHistory()
        history.append(self._record(0, 10.0, 1.0))
        assert [r.round_index for r in history.last(10)] == [0]

    def test_empty_history_best_record(self):
        assert GameHistory().best_record is None

    def test_best_record_consistent_with_best_price_and_utility(self):
        history = GameHistory()
        history.append(self._record(0, 10.0, 3.0))
        history.append(self._record(1, 25.0, 6.4))
        best = history.best_record
        assert best is not None
        assert best.price == history.best_price
        assert best.msp_utility == history.best_utility

    def test_best_tie_breaks_to_first(self):
        history = GameHistory()
        history.append(self._record(0, 10.0, 6.4))
        history.append(self._record(1, 25.0, 6.4))
        assert history.best_price == 10.0

    def test_greedy_explores_on_empty_history(self):
        """Regression for the empty-history contract at its main call site:
        GreedyPricing must fall back to exploration (not crash) when
        best_price is None."""
        from repro.baselines import GreedyPricing

        policy = GreedyPricing(5.0, 50.0, epsilon=0.0, seed=0)
        price = policy.propose_price(GameHistory())
        assert 5.0 <= price <= 50.0

    def test_total_demand(self):
        record = self._record(0, 10.0, 1.0)
        assert record.total_demand == pytest.approx(0.3)


class TestRunRounds:
    def test_fixed_policy_constant_outcomes(self, market):
        history, outcomes = run_rounds(market, FixedPricing(20.0), 5)
        assert len(history) == 5
        assert all(o.price == 20.0 for o in outcomes)
        assert len({o.msp_utility for o in outcomes}) == 1

    def test_price_clamped_to_feasible(self, market):
        history, outcomes = run_rounds(market, FixedPricing(1.0), 1)
        assert outcomes[0].price == market.config.unit_cost  # clamped up to C

    def test_history_accumulates_across_calls(self, market):
        history, _ = run_rounds(market, FixedPricing(20.0), 3)
        history, _ = run_rounds(market, FixedPricing(25.0), 2, history=history)
        assert len(history) == 5
        # Indices continue across segments (and agree with sim.play_policy).
        assert [r.round_index for r in history.records] == [0, 1, 2, 3, 4]

    def test_oracle_achieves_equilibrium_utility(self, market):
        eq = market.equilibrium()
        _, outcomes = run_rounds(market, OraclePricing(market), 3)
        assert outcomes[0].msp_utility == pytest.approx(eq.msp_utility, rel=1e-9)

    def test_random_policy_within_bounds(self, market):
        policy = RandomPricing(5.0, 50.0, seed=0)
        _, outcomes = run_rounds(market, policy, 50)
        assert all(5.0 <= o.price <= 50.0 for o in outcomes)

    def test_zero_rounds_rejected(self, market):
        with pytest.raises(ValueError):
            run_rounds(market, FixedPricing(20.0), 0)

    def test_policies_satisfy_protocol(self, market):
        for policy in (
            FixedPricing(10.0),
            RandomPricing(5.0, 50.0),
            OraclePricing(market),
        ):
            assert isinstance(policy, PricingPolicy)
