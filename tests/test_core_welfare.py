"""Welfare-analysis tests: planner optimum, deadweight loss, surplus split."""

import pytest

from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.core.welfare import social_welfare, welfare_report
from repro.entities.vmu import paper_fig2_population, uniform_population


@pytest.fixture
def market():
    return StackelbergMarket(paper_fig2_population())


class TestSocialWelfare:
    def test_equals_immersion_minus_cost(self, market):
        """Payments cancel: W = Σ G_n − C Σ b_n."""
        price = 20.0
        outcome = market.round_outcome(price)
        # U_n = G_n − p b_n  =>  G_n = U_n + p b_n.
        immersion_total = float(
            outcome.vmu_utilities.sum() + price * outcome.allocations.sum()
        )
        expected = immersion_total - 5.0 * float(outcome.allocations.sum())
        assert social_welfare(market, price) == pytest.approx(expected)

    def test_welfare_maximised_at_cost_when_capacity_slack(self):
        """With slack capacity the planner prices at marginal cost.

        The paper's B_max = 50 (market units) actually binds at p = C
        (demand at cost is ~192), so the uncapacitated claim needs
        enforce_capacity off.
        """
        config = MarketConfig(enforce_capacity=False)
        market = StackelbergMarket(paper_fig2_population(), config=config)
        at_cost = social_welfare(market, 5.0)
        for price in (10.0, 25.34, 40.0):
            assert social_welfare(market, price) < at_cost

    def test_monopoly_price_not_welfare_optimal(self, market):
        eq_price = market.equilibrium().price
        report = welfare_report(market)
        assert social_welfare(market, eq_price) < report.planner_welfare


class TestWelfareReport:
    def test_planner_price_is_cost_when_capacity_slack(self):
        config = MarketConfig(enforce_capacity=False)
        market = StackelbergMarket(paper_fig2_population(), config=config)
        report = welfare_report(market)
        assert report.planner_price == pytest.approx(5.0, abs=0.05)

    def test_deadweight_loss_positive(self, market):
        report = welfare_report(market)
        assert report.deadweight_loss > 0.0
        assert report.efficiency < 1.0

    def test_efficiency_between_zero_and_one(self, market):
        report = welfare_report(market)
        assert 0.0 < report.efficiency <= 1.0

    def test_msp_share_in_unit_interval(self, market):
        report = welfare_report(market)
        assert 0.0 < report.monopoly_msp_share < 1.0

    def test_capacity_binding_raises_planner_price(self):
        """With B_max binding at p = C, the planner's price rises above
        cost (the capacity must be rationed by price)."""
        config = MarketConfig(max_bandwidth=10.0)
        market = StackelbergMarket(paper_fig2_population(), config=config)
        report = welfare_report(market)
        # demand at cost: (10/5 - 0.0778)*100 ≈ 192 market units >> 10
        assert report.planner_price > 5.0 + 0.5

    def test_monopoly_values_match_equilibrium(self, market):
        report = welfare_report(market)
        eq = market.equilibrium()
        assert report.monopoly_price == pytest.approx(eq.price)
        assert report.monopoly_welfare == pytest.approx(
            eq.msp_utility + eq.total_vmu_utility
        )

    def test_more_vmus_more_welfare(self, market):
        small = welfare_report(market.with_vmus(uniform_population(2)))
        large = welfare_report(market.with_vmus(uniform_population(4)))
        assert large.planner_welfare > small.planner_welfare
