"""GAE and rollout-buffer tests: return identities and buffer lifecycle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drl.buffer import RolloutBuffer
from repro.drl.gae import discounted_returns, generalized_advantages, paper_advantages
from repro.errors import ConfigurationError

floats = st.floats(min_value=-5.0, max_value=5.0)


class TestDiscountedReturns:
    def test_brute_force(self):
        rewards = np.array([1.0, 2.0, 3.0])
        gamma = 0.9
        expected = [
            1.0 + 0.9 * 2.0 + 0.81 * 3.0,
            2.0 + 0.9 * 3.0,
            3.0,
        ]
        np.testing.assert_allclose(discounted_returns(rewards, gamma), expected)

    def test_bootstrap(self):
        returns = discounted_returns(np.array([1.0]), 0.5, bootstrap_value=10.0)
        assert returns[0] == pytest.approx(1.0 + 0.5 * 10.0)

    def test_gamma_zero_is_immediate(self):
        rewards = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(discounted_returns(rewards, 0.0), rewards)

    def test_gamma_one_is_cumulative(self):
        rewards = np.array([1.0, 1.0, 1.0])
        np.testing.assert_allclose(discounted_returns(rewards, 1.0), [3.0, 2.0, 1.0])

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            discounted_returns(np.array([1.0]), 1.5)


class TestAdvantages:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(floats, min_size=1, max_size=20),
        st.lists(floats, min_size=1, max_size=20),
        st.floats(min_value=0.0, max_value=1.0),
        floats,
    )
    def test_eq18_equals_gae_lambda_one(self, rewards, values, gamma, bootstrap):
        """The paper's Eq. (18) advantage is exactly GAE(λ = 1)."""
        n = min(len(rewards), len(values))
        r = np.array(rewards[:n])
        v = np.array(values[:n])
        paper = paper_advantages(r, v, gamma, bootstrap_value=bootstrap)
        gae = generalized_advantages(r, v, gamma, 1.0, bootstrap_value=bootstrap)
        np.testing.assert_allclose(paper, gae, rtol=1e-10, atol=1e-10)

    def test_gae_lambda_zero_is_td_residual(self):
        r = np.array([1.0, 2.0])
        v = np.array([0.5, 1.5])
        gae = generalized_advantages(r, v, 0.9, 0.0, bootstrap_value=3.0)
        np.testing.assert_allclose(
            gae, [1.0 + 0.9 * 1.5 - 0.5, 2.0 + 0.9 * 3.0 - 1.5]
        )

    def test_perfect_critic_zero_advantage(self):
        # If V matches the true returns, advantages vanish at λ = 1.
        rewards = np.array([1.0, 1.0, 1.0])
        values = discounted_returns(rewards, 0.9)
        adv = paper_advantages(rewards, values, 0.9)
        np.testing.assert_allclose(adv, np.zeros(3), atol=1e-12)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paper_advantages(np.ones(3), np.ones(2), 0.9)
        with pytest.raises(ValueError):
            generalized_advantages(np.ones(3), np.ones(2), 0.9, 0.95)


class TestRolloutBuffer:
    def _filled(self, n=6, gamma=0.9, lam=1.0) -> RolloutBuffer:
        buffer = RolloutBuffer(gamma=gamma, lam=lam)
        for k in range(n):
            buffer.add(
                observation=np.full(3, float(k)),
                action=np.array([float(k)]),
                reward=1.0,
                log_prob=-0.5 * k,
                value=0.1 * k,
            )
        return buffer

    def test_len(self):
        assert len(self._filled(4)) == 4

    def test_finalize_then_sample(self):
        buffer = self._filled()
        buffer.finalize(bootstrap_value=0.0)
        batch = buffer.sample(4, seed=0)
        assert batch.observations.shape == (4, 3)
        assert batch.actions.shape == (4, 1)
        assert batch.advantages.shape == (4,)

    def test_sample_before_finalize_rejected(self):
        with pytest.raises(ConfigurationError, match="finalize"):
            self._filled().sample(2)

    def test_add_after_finalize_rejected(self):
        buffer = self._filled()
        buffer.finalize()
        with pytest.raises(ConfigurationError):
            buffer.add(np.zeros(3), np.zeros(1), 0.0, 0.0, 0.0)

    def test_finalize_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            RolloutBuffer(gamma=0.9).finalize()

    def test_clear_resets(self):
        buffer = self._filled()
        buffer.finalize()
        buffer.clear()
        assert len(buffer) == 0
        assert not buffer.finalized

    def test_returns_match_gae_module(self):
        buffer = self._filled(5, gamma=0.8)
        buffer.finalize(bootstrap_value=2.0)
        batch = buffer.minibatches(5, seed=0)[0]
        # minibatches(5) on 5 items covers all; sort by observation to undo shuffle
        order = np.argsort(batch.observations[:, 0])
        expected = discounted_returns(np.ones(5), 0.8, bootstrap_value=2.0)
        np.testing.assert_allclose(batch.returns[order], expected)

    def test_minibatches_cover_everything_once(self):
        buffer = self._filled(10)
        buffer.finalize()
        batches = buffer.minibatches(3, seed=1)
        seen = np.concatenate([b.observations[:, 0] for b in batches])
        assert sorted(seen.tolist()) == [float(k) for k in range(10)]

    def test_sample_with_replacement_when_small(self):
        buffer = self._filled(2)
        buffer.finalize()
        batch = buffer.sample(8, seed=0)
        assert batch.observations.shape[0] == 8

    def test_invalid_batch_size(self):
        buffer = self._filled()
        buffer.finalize()
        with pytest.raises(ConfigurationError):
            buffer.sample(0)

    def test_invalid_gamma_lam(self):
        with pytest.raises(ConfigurationError):
            RolloutBuffer(gamma=1.2)
        with pytest.raises(ConfigurationError):
            RolloutBuffer(gamma=0.9, lam=-0.1)

    def test_stored_arrays_are_copies(self):
        buffer = RolloutBuffer(gamma=0.9)
        obs = np.zeros(3)
        buffer.add(obs, np.zeros(1), 0.0, 0.0, 0.0)
        obs[:] = 99.0
        buffer.finalize()
        assert buffer.sample(1, seed=0).observations[0, 0] == 0.0
