"""Migration-substrate tests: pre-copy dynamics, sessions, and AoTM bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import OraclePricing
from repro.channel.link import paper_link
from repro.core.aotm import aotm
from repro.core.stackelberg import StackelbergMarket
from repro.entities.registry import World
from repro.entities.rsu import RoadsideUnit
from repro.entities.vmu import VmuProfile
from repro.entities.vt import VehicularTwin, VtPayload
from repro.errors import MigrationError
from repro.migration.pipeline import run_migration_pipeline
from repro.migration.precopy import PrecopyConfig, simulate_precopy, simulate_stop_and_copy
from repro.migration.session import MigrationSession
from repro.mobility.coverage import HandoverEvent
from repro.utils.units import megabytes_to_data_units


def make_twin(total_mb=200.0, dirty_rate=0.0) -> VehicularTwin:
    return VehicularTwin(
        vt_id="vt:x",
        vmu_id="x",
        payload=VtPayload.with_total(total_mb),
        dirty_rate_mb_s=dirty_rate,
    )


class TestPrecopy:
    def test_zero_dirty_rate_single_round(self):
        twin = make_twin(200.0, dirty_rate=0.0)
        trace = simulate_precopy(twin, rate_mb_s=100.0)
        assert len(trace.rounds) == 1
        assert trace.total_transferred_mb == pytest.approx(200.0)
        assert trace.total_time_s == pytest.approx(2.0)
        assert trace.converged

    def test_zero_dirty_measured_equals_analytic(self):
        twin = make_twin(150.0)
        rate = 80.0
        trace = simulate_precopy(twin, rate)
        assert trace.total_time_s == pytest.approx(150.0 / rate)

    def test_dirty_rate_adds_rounds_and_time(self):
        clean = simulate_precopy(make_twin(200.0, 0.0), 100.0)
        dirty = simulate_precopy(make_twin(200.0, 30.0), 100.0)
        assert len(dirty.rounds) > 1
        assert dirty.total_time_s > clean.total_time_s
        assert dirty.total_transferred_mb > clean.total_transferred_mb

    def test_dirty_rounds_geometric_decay(self):
        trace = simulate_precopy(make_twin(400.0, 20.0), 100.0)
        sizes = [r.sent_mb for r in trace.rounds]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        # ratio should be dirty/rate = 0.2 each round
        for a, b in zip(sizes, sizes[1:]):
            assert b / a == pytest.approx(0.2, rel=1e-9)

    def test_downtime_smaller_with_precopy(self):
        twin = make_twin(300.0, 10.0)
        live = simulate_precopy(twin, 100.0)
        cold = simulate_stop_and_copy(twin, 100.0)
        assert live.downtime_s < cold.downtime_s

    def test_non_convergent_hits_round_cap(self):
        # dirty rate == 90% of the rate with a high threshold never drops
        # below stop_threshold quickly; use a tiny cap to force the flag.
        config = PrecopyConfig(max_rounds=3, stop_threshold_mb=0.001)
        trace = simulate_precopy(make_twin(1000.0, 90.0), 100.0, config=config)
        assert not trace.converged
        assert len(trace.rounds) == 3

    def test_stop_and_copy_is_all_downtime(self):
        twin = make_twin(200.0)
        trace = simulate_stop_and_copy(twin, 50.0)
        assert trace.downtime_s == pytest.approx(4.0)
        assert trace.total_time_s == pytest.approx(trace.downtime_s)
        assert trace.rounds == []

    def test_invalid_rate(self):
        with pytest.raises(Exception):
            simulate_precopy(make_twin(), 0.0)

    def test_invalid_config(self):
        with pytest.raises(MigrationError):
            PrecopyConfig(max_rounds=0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=50.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=40.0),
        st.floats(min_value=50.0, max_value=200.0),
    )
    def test_measured_aotm_lower_bounded_by_analytic(self, total, dirty, rate):
        """Pre-copy can never beat the one-shot Eq. (1) time (it re-sends
        dirtied memory), with equality iff nothing is dirtied."""
        twin = make_twin(total, dirty)
        trace = simulate_precopy(twin, rate)
        analytic = total / rate
        assert trace.total_time_s >= analytic * (1.0 - 1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=50.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=40.0),
    )
    def test_bytes_conserved(self, total, dirty):
        """Everything sent = payload + re-sent dirty bytes; the final
        image at the destination is exactly the payload."""
        twin = make_twin(total, dirty)
        trace = simulate_precopy(twin, 100.0)
        # Every dirtied byte is re-sent exactly once (round r's dirt is
        # round r+1's payload; the final round's dirt ships in
        # stop-and-copy), so total sent == payload + Σ dirtied.
        dirtied = sum(r.dirtied_mb for r in trace.rounds)
        assert trace.total_transferred_mb == pytest.approx(
            total + dirtied, rel=1e-9
        )


class TestMigrationSession:
    def test_rate_conversion(self):
        session = MigrationSession(paper_link())
        # rate = b * SE * 100 MB per time unit.
        expected = 0.5 * paper_link().spectral_efficiency * 100.0
        assert session.rate_mb_s(0.5) == pytest.approx(expected)

    def test_analytic_identity_with_core_aotm(self):
        """Session's analytic AoTM equals core.aotm.aotm in natural units."""
        session = MigrationSession(paper_link())
        twin = make_twin(200.0)
        report = session.migrate(twin, bandwidth=0.3)
        units = megabytes_to_data_units(200.0)
        natural = aotm(units, 0.3, paper_link().spectral_efficiency)
        # session clock is natural-time * 100MB/100MB == natural time
        assert report.analytic_aotm_s == pytest.approx(natural / 100.0 * 100.0)

    def test_measured_ge_analytic(self):
        session = MigrationSession()
        report = session.migrate(make_twin(200.0, dirty_rate=5.0), 0.2)
        assert report.measured_aotm_s >= report.analytic_aotm_s

    def test_zero_dirty_equality(self):
        session = MigrationSession()
        report = session.migrate(make_twin(200.0, dirty_rate=0.0), 0.2)
        assert report.measured_aotm_s == pytest.approx(report.analytic_aotm_s)

    def test_liveness_ratio(self):
        session = MigrationSession()
        live = session.migrate(make_twin(200.0, dirty_rate=5.0), 0.2, live=True)
        cold = session.migrate(make_twin(200.0, dirty_rate=5.0), 0.2, live=False)
        assert live.liveness_ratio > cold.liveness_ratio
        assert cold.liveness_ratio == pytest.approx(0.0)

    def test_nonconvergent_dirty_rate_rejected(self):
        session = MigrationSession()
        rate = session.rate_mb_s(0.01)
        twin = make_twin(100.0, dirty_rate=rate * 1.5)
        with pytest.raises(MigrationError, match="cannot converge"):
            session.migrate(twin, 0.01)

    def test_invalid_bandwidth(self):
        with pytest.raises(Exception):
            MigrationSession().migrate(make_twin(), 0.0)


class TestPipeline:
    def _setup(self):
        world = World()
        for i in range(3):
            world.add_rsu(
                RoadsideUnit(
                    rsu_id=f"rsu-{i}",
                    position_m=(1000.0 * i, 0.0),
                    coverage_radius_m=700.0,
                )
            )
        vmus = [
            VmuProfile("v0", 200.0, 5.0),
            VmuProfile("v1", 100.0, 5.0),
        ]
        for vmu in vmus:
            world.add_vmu(vmu, host_rsu_id="rsu-0", dirty_rate_mb_s=1.0)
        market = StackelbergMarket(vmus)
        return world, market

    def _event(self, vehicle, time, src, dst):
        return HandoverEvent(
            vehicle_id=vehicle,
            time_s=time,
            source_rsu_id=src,
            destination_rsu_id=dst,
            position_m=(0.0, 0.0),
        )

    def test_services_migrations(self):
        world, market = self._setup()
        events = [
            self._event("v0", 1.0, "rsu-0", "rsu-1"),
            self._event("v1", 2.0, "rsu-0", "rsu-1"),
        ]
        result = run_migration_pipeline(
            world, market, OraclePricing(market), events
        )
        assert len(result.completed) == 2
        assert result.total_msp_profit > 0.0
        world.check_invariants()
        assert world.twin_of("v0").host_rsu_id == "rsu-1"

    def test_skips_attach_events(self):
        world, market = self._setup()
        events = [self._event("v0", 0.0, None, "rsu-0")]
        result = run_migration_pipeline(
            world, market, OraclePricing(market), events
        )
        assert result.steps == []

    def test_unknown_vmu_rejected(self):
        world, market = self._setup()
        events = [self._event("ghost", 1.0, "rsu-0", "rsu-1")]
        with pytest.raises(MigrationError, match="unknown VMU"):
            run_migration_pipeline(world, market, OraclePricing(market), events)

    def test_history_records_profit(self):
        world, market = self._setup()
        events = [self._event("v0", 1.0, "rsu-0", "rsu-1")]
        result = run_migration_pipeline(
            world, market, OraclePricing(market), events
        )
        record = result.history.records[0]
        eq = market.equilibrium()
        assert record.price == pytest.approx(eq.price)
        expected = (eq.price - market.config.unit_cost) * eq.demands[0]
        assert record.msp_utility == pytest.approx(expected)

    def test_mean_aotm_nan_when_empty(self):
        world, market = self._setup()
        result = run_migration_pipeline(world, market, OraclePricing(market), [])
        assert np.isnan(result.mean_measured_aotm)
