"""Validation-helper tests: acceptance, rejection, and message content."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.utils import validation as v


class TestRequireFinite:
    def test_accepts_and_returns_float(self):
        assert v.require_finite("x", 3) == 3.0

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            v.require_finite("x", bad)


class TestRequirePositive:
    def test_accepts(self):
        assert v.require_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            v.require_positive("x", bad)

    def test_message_names_argument(self):
        with pytest.raises(ConfigurationError, match="bandwidth"):
            v.require_positive("bandwidth", -2.0)


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert v.require_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            v.require_non_negative("x", -1e-9)


class TestRequireInRange:
    def test_inclusive_bounds_accepted(self):
        assert v.require_in_range("p", 5.0, 5.0, 50.0) == 5.0
        assert v.require_in_range("p", 50.0, 5.0, 50.0) == 50.0

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            v.require_in_range("p", 5.0, 5.0, 50.0, inclusive=False)

    def test_outside_rejected(self):
        with pytest.raises(ConfigurationError):
            v.require_in_range("p", 51.0, 5.0, 50.0)

    def test_message_shows_bounds(self):
        with pytest.raises(ConfigurationError, match=r"\[5.0, 50.0\]"):
            v.require_in_range("p", 0.0, 5.0, 50.0)


class TestRequirePositiveInt:
    def test_accepts(self):
        assert v.require_positive_int("n", 3) == 3

    @pytest.mark.parametrize("bad", [0, -1, 2.0, True])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            v.require_positive_int("n", bad)


class TestRequireProbability:
    def test_bounds(self):
        assert v.require_probability("eps", 0.0) == 0.0
        assert v.require_probability("eps", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            v.require_probability("eps", 1.01)


class TestSequenceHelpers:
    def test_same_length_ok(self):
        v.require_same_length("a", [1, 2], "b", [3, 4])

    def test_same_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="same length"):
            v.require_same_length("a", [1], "b", [3, 4])

    def test_non_empty_ok(self):
        v.require_non_empty("xs", [0])

    def test_non_empty_rejects(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            v.require_non_empty("xs", [])
