"""Stochastic-market episode env: nature redraws the market per episode."""

import numpy as np
import pytest

from repro.core.bayesian import ScenarioSpec, sample_market_distribution
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import VmuProfile, paper_fig2_population
from repro.env import StochasticMarketEnv
from repro.errors import EnvironmentError_


def distribution(num_scenarios=4, seed=7, **jitter):
    base = StackelbergMarket(paper_fig2_population())
    return sample_market_distribution(
        base, ScenarioSpec(num_scenarios=num_scenarios, seed=seed, **jitter)
    )


def make_env(seed=0, **kwargs):
    return StochasticMarketEnv.from_distribution(
        distribution(), seed=seed, rounds_per_episode=5, **kwargs
    )


class TestConstruction:
    def test_from_distribution_carries_scenarios_and_weights(self):
        dist = distribution()
        env = StochasticMarketEnv.from_distribution(dist, seed=0)
        assert env.scenarios == dist.scenarios
        np.testing.assert_array_equal(
            env.scenario_probabilities, dist.weights
        )

    def test_needs_scenarios(self):
        with pytest.raises(EnvironmentError_):
            StochasticMarketEnv([])

    def test_population_sizes_must_match(self):
        base = StackelbergMarket(paper_fig2_population())
        small = StackelbergMarket(
            [VmuProfile("only", data_size_mb=50.0, immersion_coef=1.0)]
        )
        with pytest.raises(EnvironmentError_):
            StochasticMarketEnv([base, small])

    def test_weight_validation(self):
        base = StackelbergMarket(paper_fig2_population())
        with pytest.raises(EnvironmentError_):
            StochasticMarketEnv([base, base], weights=[1.0])
        with pytest.raises(EnvironmentError_):
            StochasticMarketEnv([base, base], weights=[1.0, -1.0])


class TestEpisodes:
    def test_scenario_draws_replay_with_seed(self):
        def run(seed):
            env = make_env(seed=seed)
            draws, observations = [], []
            for _ in range(6):
                observations.append(env.reset())
                draws.append(env.scenario_index)
                for _ in range(5):
                    env.step(12.0)
            return draws, observations

        draws_a, obs_a = run(3)
        draws_b, obs_b = run(3)
        assert draws_a == draws_b
        for left, right in zip(obs_a, obs_b):
            np.testing.assert_array_equal(left, right)

    def test_different_seeds_diverge(self):
        def draws(seed):
            env = make_env(seed=seed)
            sequence = []
            for _ in range(8):
                env.reset()
                sequence.append(env.scenario_index)
            return sequence

        assert draws(1) != draws(2)

    def test_episode_plays_bound_scenario(self):
        env = make_env(seed=5)
        env.reset()
        assert env.market is env.scenarios[env.scenario_index]

    def test_visits_multiple_scenarios(self):
        env = make_env(seed=0)
        seen = set()
        for _ in range(20):
            env.reset()
            seen.add(env.scenario_index)
        assert len(seen) > 1

    def test_steps_and_termination(self):
        env = make_env(seed=0)
        env.reset()
        for round_index in range(5):
            _, reward, done, info = env.step(12.0)
            assert np.isfinite(reward)
        assert done

    def test_utility_scale_follows_drawn_scenario(self):
        """Capacity jitter changes capacity_natural, and the per-episode
        reward scale must follow the drawn market, not the first one."""
        base = StackelbergMarket(paper_fig2_population())
        dist = sample_market_distribution(
            base,
            ScenarioSpec(num_scenarios=6, seed=1, capacity_jitter=0.5),
        )
        env = StochasticMarketEnv.from_distribution(
            dist, seed=0, rounds_per_episode=3
        )
        scales = set()
        for _ in range(12):
            env.reset()
            config = env.market.config
            expected = (
                config.max_price - config.unit_cost
            ) * config.capacity_natural
            assert env._utility_scale == expected
            scales.add(expected)
        assert len(scales) > 1
