"""VectorTrainer tests: batched Algorithm 1 over an env batch.

The key regression: an E = 1 vector run is bit-compatible with the scalar
Trainer on the same seeds (same RNG consumption order, same pooled
sampling), so routing every experiment through the vector path changes
nothing for historical single-env configurations.
"""

import numpy as np
import pytest

from repro.core.stackelberg import StackelbergMarket
from repro.drl.buffer import MiniBatch, concatenate_minibatches, sample_minibatch
from repro.drl.policy import ActionScaler, ActorCritic
from repro.drl.ppo import PPOAgent, PPOConfig
from repro.drl.trainer import Trainer, TrainerConfig, VectorTrainer, train_pricing_agent
from repro.entities.vmu import paper_fig2_population
from repro.env import MigrationGameEnv, VectorMigrationEnv
from repro.errors import ConfigurationError


@pytest.fixture
def market():
    return StackelbergMarket(paper_fig2_population())


SMOKE = TrainerConfig(
    num_episodes=3,
    update_interval=5,
    update_epochs=2,
    batch_size=5,
    gamma=0.0,
)

ENV_KWARGS = dict(history_length=2, rounds_per_episode=10, reward_mode="utility")


class TestSingleEnvBitCompatibility:
    def test_vector_trainer_matches_scalar_trainer(self, market):
        """E = 1: every trace and every update statistic must be identical
        to the scalar Trainer, bit for bit."""
        env = MigrationGameEnv(market, seed=0, **ENV_KWARGS)
        _, scalar_result, _ = train_pricing_agent(
            env, trainer_config=SMOKE, ppo_config=PPOConfig(learning_rate=1e-3), seed=11
        )
        venv = VectorMigrationEnv.from_market(market, 1, seed=0, **ENV_KWARGS)
        _, vector_result, _ = train_pricing_agent(
            venv, trainer_config=SMOKE, ppo_config=PPOConfig(learning_rate=1e-3), seed=11
        )
        assert vector_result.episode_returns == scalar_result.episode_returns
        assert (
            vector_result.episode_best_utilities
            == scalar_result.episode_best_utilities
        )
        assert (
            vector_result.episode_mean_utilities
            == scalar_result.episode_mean_utilities
        )
        assert (
            vector_result.episode_final_prices == scalar_result.episode_final_prices
        )
        assert vector_result.update_stats == scalar_result.update_stats

    def test_dispatch_picks_trainer_by_env_type(self, market):
        env = MigrationGameEnv(market, seed=0, **ENV_KWARGS)
        venv = VectorMigrationEnv.from_market(market, 1, seed=0, **ENV_KWARGS)
        network = ActorCritic(env.observation_dim, (8,), seed=0)
        agent = PPOAgent(network, PPOConfig(learning_rate=1e-3))
        scaler = ActionScaler(env.action_low, env.action_high)
        assert isinstance(Trainer(env, agent, scaler, SMOKE, seed=0), Trainer)
        assert isinstance(
            VectorTrainer(venv, agent, scaler, SMOKE, seed=0), VectorTrainer
        )
        with pytest.raises(ConfigurationError):
            VectorTrainer(env, agent, scaler, SMOKE, seed=0)


class TestConcurrentCollection:
    def test_collects_e_episodes_per_iteration(self, market):
        venv = VectorMigrationEnv.from_market(market, 4, seed=0, **ENV_KWARGS)
        _, result, _ = train_pricing_agent(
            venv, trainer_config=SMOKE, ppo_config=PPOConfig(learning_rate=1e-3), seed=11
        )
        assert result.num_episodes == SMOKE.num_episodes * 4
        assert len(result.episode_final_prices) == SMOKE.num_episodes * 4
        # 10 rounds / interval 5 → 2 update triggers × 2 epochs × 3 iterations,
        # independent of E (segments are pooled, not iterated per env).
        assert len(result.update_stats) == 12

    def test_prices_feasible(self, market):
        venv = VectorMigrationEnv.from_market(market, 3, seed=0, **ENV_KWARGS)
        _, result, _ = train_pricing_agent(
            venv, trainer_config=SMOKE, ppo_config=PPOConfig(learning_rate=1e-3), seed=11
        )
        assert all(5.0 <= p <= 50.0 for p in result.episode_final_prices)

    def test_deterministic_given_seeds(self, market):
        def run():
            venv = VectorMigrationEnv.from_market(market, 3, seed=5, **ENV_KWARGS)
            _, result, _ = train_pricing_agent(
                venv,
                trainer_config=SMOKE,
                ppo_config=PPOConfig(learning_rate=1e-3),
                seed=11,
            )
            return result.episode_returns

        assert run() == run()


class TestBatchedActPaths:
    def test_act_batch_first_row_matches_act(self, market):
        env = MigrationGameEnv(market, seed=0, **ENV_KWARGS)
        network = ActorCritic(env.observation_dim, (8,), seed=3)
        observation = env.reset()
        raw_a, logp_a, value_a = network.act(
            observation, seed=np.random.default_rng(9)
        )
        raws, logps, values = network.act_batch(
            observation.reshape(1, -1), seed=np.random.default_rng(9)
        )
        assert (raws[0] == raw_a).all()
        assert logps[0] == logp_a
        assert values[0] == value_a

    def test_act_batch_rejects_bad_shapes(self, market):
        env = MigrationGameEnv(market, seed=0, **ENV_KWARGS)
        network = ActorCritic(env.observation_dim, (8,), seed=3)
        with pytest.raises(ConfigurationError):
            network.act_batch(np.zeros(env.observation_dim))

    def test_value_batch_matches_value(self, market):
        env = MigrationGameEnv(market, seed=0, **ENV_KWARGS)
        network = ActorCritic(env.observation_dim, (8,), seed=3)
        agent = PPOAgent(network, PPOConfig(learning_rate=1e-3))
        observation = env.reset()
        # A one-row batch is the bit-compat contract (same shapes, same
        # BLAS kernel); wider batches may differ in the last ulp.
        assert agent.value_batch(observation.reshape(1, -1))[0] == agent.value(
            observation
        )
        batch = np.stack([observation, observation * 0.5])
        values = agent.value_batch(batch)
        assert values.shape == (2,)
        assert values[0] == pytest.approx(agent.value(observation), rel=1e-12)


class TestBufferPooling:
    def _batch(self, offset):
        return MiniBatch(
            observations=np.full((4, 2), float(offset)),
            actions=np.full((4, 1), float(offset)),
            old_log_probs=np.arange(4.0) + offset,
            advantages=np.arange(4.0) + offset,
            returns=np.arange(4.0) + offset,
        )

    def test_concatenate_pools_along_batch_axis(self):
        pool = concatenate_minibatches([self._batch(0), self._batch(10)])
        assert pool.observations.shape == (8, 2)
        assert pool.old_log_probs[4] == 10.0

    def test_concatenate_single_is_identity(self):
        batch = self._batch(0)
        assert concatenate_minibatches([batch]) is batch

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            concatenate_minibatches([])

    def test_sample_minibatch_draws_from_pool(self):
        pool = concatenate_minibatches([self._batch(0), self._batch(10)])
        sampled = sample_minibatch(pool, 3, seed=0)
        assert sampled.observations.shape == (3, 2)
        for row in sampled.old_log_probs:
            assert row in pool.old_log_probs
