"""Table-rendering tests: alignment, precision, error handling."""

import pytest

from repro.errors import ExperimentError
from repro.utils.tables import Table, format_table


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(("a", "b"), [(1, 2.5), (10, 3.25)])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "2.500" in lines[2]
        assert "3.250" in lines[3]

    def test_title_prepended(self):
        out = format_table(("x",), [(1,)], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_precision(self):
        out = format_table(("x",), [(1.23456,)], precision=1)
        assert "1.2" in out and "1.23" not in out

    def test_ragged_row_rejected(self):
        with pytest.raises(ExperimentError, match="cells"):
            format_table(("a", "b"), [(1,)])

    def test_bool_rendered_as_word(self):
        out = format_table(("flag",), [(True,)])
        assert "True" in out

    def test_columns_aligned(self):
        out = format_table(("name", "v"), [("long-name", 1.0), ("s", 20.0)])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3])


class TestTable:
    def test_add_row_and_len(self):
        table = Table(headers=("a", "b"))
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert len(table) == 2

    def test_add_row_arity_checked(self):
        table = Table(headers=("a", "b"))
        with pytest.raises(ExperimentError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table(headers=("cost", "utility"))
        table.add_row(5.0, 6.44)
        table.add_row(9.0, 5.41)
        assert table.column("cost") == [5.0, 9.0]
        assert table.column("utility") == [6.44, 5.41]

    def test_unknown_column(self):
        table = Table(headers=("a",))
        with pytest.raises(ExperimentError, match="unknown column"):
            table.column("nope")

    def test_str_includes_title_and_rows(self):
        table = Table(headers=("a",), title="T")
        table.add_row(1)
        text = str(table)
        assert text.startswith("T")
        assert "1" in text
