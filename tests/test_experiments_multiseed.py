"""Multi-seed runner tests."""

import pytest

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.experiments import ExperimentConfig, run_multiseed_comparison


@pytest.fixture(scope="module")
def result():
    market = StackelbergMarket(paper_fig2_population())
    return run_multiseed_comparison(
        market,
        ExperimentConfig.smoke(),
        seeds=(0, 1, 2),
        schemes=("random", "equilibrium"),
    )


class TestMultiSeed:
    def test_sample_counts(self, result):
        assert len(result.samples["random"]) == 3
        assert len(result.samples["equilibrium"]) == 3

    def test_equilibrium_is_seed_invariant(self, result):
        values = result.samples["equilibrium"]
        assert max(values) - min(values) < 1e-9

    def test_stats_and_table(self, result):
        stats = result.stats("random")
        assert stats.count == 3
        assert "Multi-seed" in str(result.table())

    def test_equilibrium_beats_random_significantly(self):
        market = StackelbergMarket(paper_fig2_population())
        comparison = run_multiseed_comparison(
            market,
            ExperimentConfig.smoke(),
            seeds=(0, 1, 2, 3, 4),
            schemes=("random", "equilibrium"),
        )
        eq_mean = comparison.stats("equilibrium").mean
        rnd_mean = comparison.stats("random").mean
        assert eq_mean > rnd_mean
        assert comparison.significance("equilibrium", "random") < 0.05

    def test_needs_two_seeds(self):
        market = StackelbergMarket(paper_fig2_population())
        with pytest.raises(ValueError):
            run_multiseed_comparison(
                market, ExperimentConfig.smoke(), seeds=(0,)
            )
