"""Multi-seed runner tests: aggregation, payloads, and process sharding."""

import pytest

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, run_multiseed_comparison
from repro.experiments.multiseed import (
    MultiSeedResult,
    _merge_shards,
    _partition_seeds,
)
from repro.utils.serialization import load_json, save_json


@pytest.fixture(scope="module")
def result():
    market = StackelbergMarket(paper_fig2_population())
    return run_multiseed_comparison(
        market,
        ExperimentConfig.smoke(),
        seeds=(0, 1, 2),
        schemes=("random", "equilibrium"),
    )


class TestMultiSeed:
    def test_sample_counts(self, result):
        assert len(result.samples["random"]) == 3
        assert len(result.samples["equilibrium"]) == 3

    def test_equilibrium_is_seed_invariant(self, result):
        values = result.samples["equilibrium"]
        assert max(values) - min(values) < 1e-9

    def test_stats_and_table(self, result):
        stats = result.stats("random")
        assert stats.count == 3
        assert "Multi-seed" in str(result.table())

    def test_equilibrium_beats_random_significantly(self):
        market = StackelbergMarket(paper_fig2_population())
        comparison = run_multiseed_comparison(
            market,
            ExperimentConfig.smoke(),
            seeds=(0, 1, 2, 3, 4),
            schemes=("random", "equilibrium"),
        )
        eq_mean = comparison.stats("equilibrium").mean
        rnd_mean = comparison.stats("random").mean
        assert eq_mean > rnd_mean
        assert comparison.significance("equilibrium", "random") < 0.05

    def test_needs_two_seeds(self):
        market = StackelbergMarket(paper_fig2_population())
        with pytest.raises(ValueError):
            run_multiseed_comparison(
                market, ExperimentConfig.smoke(), seeds=(0,)
            )

    def test_duplicate_seeds_rejected(self):
        """Duplicate seeds would silently double-count samples (same run
        twice) and shrink every CI — the runner must refuse them."""
        market = StackelbergMarket(paper_fig2_population())
        with pytest.raises(ValueError, match="duplicate seeds"):
            run_multiseed_comparison(
                market,
                ExperimentConfig.smoke(),
                seeds=(0, 1, 2, 1),
                schemes=("random", "equilibrium"),
            )

    def test_result_records_seed_axis(self, result):
        assert result.seeds == (0, 1, 2)


class TestPayloadRoundTrip:
    def test_to_payload_from_payload_identity(self, result):
        assert MultiSeedResult.from_payload(result.to_payload()) == result

    def test_round_trips_through_save_load_json(self, result, tmp_path):
        path = save_json(tmp_path / "multiseed.json", result.to_payload())
        assert MultiSeedResult.from_payload(load_json(path)) == result

    def test_malformed_payloads_rejected(self):
        with pytest.raises(ExperimentError):
            MultiSeedResult.from_payload([1, 2, 3])
        with pytest.raises(ExperimentError):
            MultiSeedResult.from_payload({"metric": "m", "seeds": []})
        with pytest.raises(ExperimentError):
            MultiSeedResult.from_payload(
                {"metric": "m", "seeds": [], "samples": "oops"}
            )
        with pytest.raises(ExperimentError):
            MultiSeedResult.from_payload(
                {"metric": "m", "seeds": 5, "samples": {}}
            )


class TestSharding:
    def test_partition_is_deterministic_round_robin(self):
        assert _partition_seeds((0, 1, 2, 3, 4), 2) == [(0, 2, 4), (1, 3)]
        assert _partition_seeds((5, 6), 8) == [(5,), (6,)]

    def test_sharded_equals_sequential_exactly(self):
        """Acceptance: shards=k returns samples exactly equal to (and in
        the same seed order as) the sequential run."""
        market = StackelbergMarket(paper_fig2_population())
        config = ExperimentConfig.smoke()
        kwargs = dict(
            seeds=(0, 1, 2, 3, 4), schemes=("random", "equilibrium")
        )
        sequential = run_multiseed_comparison(market, config, **kwargs)
        for shards in (2, 3):
            sharded = run_multiseed_comparison(
                market, config, shards=shards, **kwargs
            )
            assert sharded == sequential

    def test_invalid_shards_rejected(self):
        market = StackelbergMarket(paper_fig2_population())
        with pytest.raises(ValueError):
            run_multiseed_comparison(
                market,
                ExperimentConfig.smoke(),
                seeds=(0, 1),
                schemes=("random",),
                shards=0,
            )

    def test_invalid_shards_rejected_before_seed_validation(self):
        """shards=0 must error up front — before seed validation, config
        work, or anything near the pool path."""
        market = StackelbergMarket(paper_fig2_population())
        with pytest.raises(ValueError, match="shards"):
            run_multiseed_comparison(
                market,
                ExperimentConfig.smoke(),
                seeds=(0,),  # itself invalid — shards must win
                schemes=("random",),
                shards=0,
            )


def _shard_payload(seeds, samples):
    return MultiSeedResult(
        metric="mean_msp_utility", samples=samples, seeds=tuple(seeds)
    ).to_payload()


class TestMergeValidation:
    """A crashed or short shard must fail the merge loudly — the old
    pre-fill-with-0.0 merge silently corrupted means/CIs/p-values."""

    SEEDS = (0, 1, 2, 3)
    SCHEMES = ("random", "equilibrium")

    def _full_payloads(self):
        return [
            _shard_payload(
                (0, 2), {"random": [1.0, 3.0], "equilibrium": [5.0, 7.0]}
            ),
            _shard_payload(
                (1, 3), {"random": [2.0, 4.0], "equilibrium": [6.0, 8.0]}
            ),
        ]

    def test_complete_payloads_merge_in_seed_order(self):
        merged = _merge_shards(
            "mean_msp_utility", self.SEEDS, self.SCHEMES, self._full_payloads()
        )
        assert merged.samples["random"] == [1.0, 2.0, 3.0, 4.0]
        assert merged.samples["equilibrium"] == [5.0, 6.0, 7.0, 8.0]

    def test_dropped_shard_raises_naming_missing_cells(self):
        payloads = self._full_payloads()[:1]  # shard for seeds (1, 3) died
        with pytest.raises(ExperimentError, match="seed 1") as excinfo:
            _merge_shards(
                "mean_msp_utility", self.SEEDS, self.SCHEMES, payloads
            )
        assert "seed 3" in str(excinfo.value)
        assert "missing 4 sample" in str(excinfo.value)

    def test_short_shard_payload_raises(self):
        payloads = [
            self._full_payloads()[0],
            _shard_payload(
                (1, 3), {"random": [2.0], "equilibrium": [6.0, 8.0]}
            ),  # 'random' lost its seed-3 sample
        ]
        with pytest.raises(ExperimentError, match=r"\('random', seed 3\)"):
            _merge_shards(
                "mean_msp_utility", self.SEEDS, self.SCHEMES, payloads
            )

    def test_missing_scheme_raises(self):
        payloads = [
            self._full_payloads()[0],
            _shard_payload((1, 3), {"random": [2.0, 4.0]}),
        ]
        with pytest.raises(ExperimentError, match="'equilibrium'"):
            _merge_shards(
                "mean_msp_utility", self.SEEDS, self.SCHEMES, payloads
            )

    def test_unknown_seed_raises(self):
        payloads = [
            self._full_payloads()[0],
            _shard_payload(
                (1, 9), {"random": [2.0, 4.0], "equilibrium": [6.0, 8.0]}
            ),
        ]
        with pytest.raises(ExperimentError, match="seed 9"):
            _merge_shards(
                "mean_msp_utility", self.SEEDS, self.SCHEMES, payloads
            )

    def test_duplicate_cell_raises(self):
        payloads = [*self._full_payloads(), self._full_payloads()[0]]
        with pytest.raises(ExperimentError, match="both carry"):
            _merge_shards(
                "mean_msp_utility", self.SEEDS, self.SCHEMES, payloads
            )
