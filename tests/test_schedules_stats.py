"""Schedule and statistics-helper tests."""

import numpy as np
import pytest

from repro.drl.schedules import (
    ConstantSchedule,
    CosineSchedule,
    ExponentialSchedule,
    LinearSchedule,
    apply_lr_schedule,
)
from repro.errors import ConfigurationError
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.stats import bootstrap_ci, compare_means, summarize


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.5)
        assert schedule(0.0) == schedule(1.0) == 0.5

    def test_linear_endpoints(self):
        schedule = LinearSchedule(start=1e-3, end=1e-5)
        assert schedule(0.0) == 1e-3
        assert schedule(1.0) == 1e-5
        assert schedule(0.5) == pytest.approx((1e-3 + 1e-5) / 2.0)

    def test_cosine_endpoints_and_shape(self):
        schedule = CosineSchedule(start=1.0, end=0.0)
        assert schedule(0.0) == pytest.approx(1.0)
        assert schedule(1.0) == pytest.approx(0.0)
        # slower decay early than linear
        assert schedule(0.25) > 0.75

    def test_exponential(self):
        schedule = ExponentialSchedule(start=1.0, end=0.0, decay=0.01)
        assert schedule(0.0) == pytest.approx(1.0)
        assert schedule(1.0) == pytest.approx(0.01)

    def test_exponential_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialSchedule(1.0, 0.0, decay=0.0)

    def test_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(1.0)(1.5)

    def test_apply_lr_schedule(self):
        parameter = Tensor(np.array([0.0]), requires_grad=True)
        optimizer = Adam([parameter], learning_rate=1e-3)
        applied = apply_lr_schedule(
            optimizer, LinearSchedule(1e-3, 1e-5), 1.0
        )
        assert applied == 1e-5
        assert optimizer.learning_rate == 1e-5

    def test_apply_rejects_nonpositive(self):
        parameter = Tensor(np.array([0.0]), requires_grad=True)
        optimizer = Adam([parameter], learning_rate=1e-3)
        with pytest.raises(ConfigurationError):
            apply_lr_schedule(optimizer, LinearSchedule(1e-3, -1.0), 1.0)


class TestSummarize:
    def test_known_sample(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.count == 3
        assert stats.ci_low < 2.0 < stats.ci_high

    def test_single_sample_degenerates(self):
        stats = summarize([5.0])
        assert stats.ci_low == stats.ci_high == 5.0

    def test_interval_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(size=10))
        large = summarize(rng.normal(size=1000))
        assert large.half_width < small.half_width

    def test_coverage_roughly_nominal(self):
        """~95% of 95% CIs should contain the true mean."""
        rng = np.random.default_rng(1)
        covered = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(loc=3.0, size=15)
            stats = summarize(sample, confidence=0.95)
            covered += stats.ci_low <= 3.0 <= stats.ci_high
        assert covered / trials == pytest.approx(0.95, abs=0.04)

    def test_invalid(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)

    def test_str(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestBootstrapAndTtest:
    def test_bootstrap_contains_mean(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(loc=10.0, size=200)
        low, high = bootstrap_ci(sample, seed=0)
        assert low < 10.0 < high

    def test_bootstrap_deterministic(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(sample, seed=5) == bootstrap_ci(sample, seed=5)

    def test_bootstrap_custom_statistic(self):
        sample = [1.0, 2.0, 100.0]
        low, high = bootstrap_ci(sample, statistic=np.median, seed=0)
        assert low <= 2.0 <= high

    def test_bootstrap_invalid(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], seed=0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)

    def test_ttest_detects_difference(self):
        rng = np.random.default_rng(0)
        a = rng.normal(loc=0.0, size=100)
        b = rng.normal(loc=1.0, size=100)
        _, p = compare_means(a, b)
        assert p < 1e-6

    def test_ttest_same_distribution(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        _, p = compare_means(a, b)
        assert p > 0.01

    def test_ttest_needs_samples(self):
        with pytest.raises(ValueError):
            compare_means([1.0], [1.0, 2.0])
