"""Coverage for the numerical game-analysis helpers (Theorems 1–2 checks)."""

import math

import pytest

from repro.game.analysis import (
    is_concave_on,
    numerical_derivative,
    numerical_second_derivative,
    verify_best_response,
    verify_no_profitable_deviation,
)
from repro.errors import GameError


class TestDerivatives:
    def test_first_derivative_quadratic(self):
        assert numerical_derivative(lambda x: x * x, 3.0) == pytest.approx(6.0)

    def test_first_derivative_step_size(self):
        assert numerical_derivative(
            math.exp, 0.0, h=1e-5
        ) == pytest.approx(1.0, rel=1e-6)

    def test_second_derivative_quadratic(self):
        assert numerical_second_derivative(
            lambda x: 2.0 * x * x, 1.0
        ) == pytest.approx(4.0, rel=1e-4)

    def test_second_derivative_linear_is_zero(self):
        assert numerical_second_derivative(
            lambda x: 3.0 * x + 1.0, 5.0
        ) == pytest.approx(0.0, abs=1e-4)


class TestConcavity:
    def test_concave_function(self):
        assert is_concave_on(lambda x: -(x - 1.0) ** 2, 0.0, 2.0)

    def test_convex_function_rejected(self):
        assert not is_concave_on(lambda x: x * x, -1.0, 1.0)

    def test_linear_is_concave(self):
        assert is_concave_on(lambda x: 2.0 * x, 0.0, 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(GameError):
            is_concave_on(lambda x: x, 0.0, 1.0, samples=1)
        with pytest.raises(GameError):
            is_concave_on(lambda x: x, 1.0, 1.0)


class TestBestResponseVerification:
    def test_true_argmax_accepted(self):
        assert verify_best_response(lambda x: -(x - 0.5) ** 2, 0.5, 0.0, 1.0)

    def test_wrong_argmax_rejected(self):
        assert not verify_best_response(lambda x: -(x - 0.5) ** 2, 0.9, 0.0, 1.0)

    def test_tolerance_guards_float_noise(self):
        # A point within tolerance of the max passes.
        assert verify_best_response(
            lambda x: -(x - 0.5) ** 2, 0.5 + 1e-8, 0.0, 1.0, tolerance=1e-6
        )


class TestNashVerification:
    def test_coordination_equilibrium(self):
        # Both want to match: (0, 0) is a Nash equilibrium.
        utilities = [
            lambda x: -((x - 0.0) ** 2),
            lambda x: -((x - 0.0) ** 2),
        ]
        assert verify_no_profitable_deviation(
            utilities, [0.0, 0.0], [(-1.0, 1.0), (-1.0, 1.0)]
        )

    def test_profitable_deviation_rejected(self):
        utilities = [lambda x: x, lambda x: x]  # always deviate upward
        assert not verify_no_profitable_deviation(
            utilities, [0.0, 0.0], [(0.0, 1.0), (0.0, 1.0)]
        )

    def test_misaligned_inputs(self):
        with pytest.raises(GameError):
            verify_no_profitable_deviation(
                [lambda x: x], [0.0, 1.0], [(0.0, 1.0)]
            )
