"""Deeper property-based tests of the Stackelberg market's structure.

These encode the *scaling laws* implied by Theorem 2's closed form —
invariances a correct implementation must satisfy for every market, not
just the paper's operating point:

- permutation invariance: relabelling VMUs changes nothing aggregate
  (prices compared at 1e-5: the equilibrium's numeric refinement resolves
  the flat top of the concave leader utility to ~1e-8);
- cost scaling: ``p* ∝ sqrt(C)`` while demand totals scale as 1/sqrt(C);
- joint (α, D) scaling: multiplying every α_n and D_n by the same factor
  leaves the price fixed and scales demand linearly;
- replication: duplicating the whole population doubles MSP utility when
  capacity is slack.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import VmuProfile

NO_CAP = MarketConfig(enforce_capacity=False)


def build(alphas, datas, *, config=NO_CAP):
    vmus = [
        VmuProfile(f"v{i}", data_size_mb=float(d), immersion_coef=float(a))
        for i, (a, d) in enumerate(zip(alphas, datas))
    ]
    return StackelbergMarket(vmus, config=config)


population = st.lists(
    st.tuples(
        st.floats(min_value=5.0, max_value=20.0),
        st.floats(min_value=100.0, max_value=300.0),
    ),
    min_size=1,
    max_size=5,
)


class TestScalingLaws:
    @settings(max_examples=25, deadline=None)
    @given(population)
    def test_permutation_invariance(self, pop):
        alphas = [a for a, _ in pop]
        datas = [d for _, d in pop]
        forward = build(alphas, datas).equilibrium()
        backward = build(alphas[::-1], datas[::-1]).equilibrium()
        assert forward.price == pytest.approx(backward.price, rel=1e-5)
        assert forward.msp_utility == pytest.approx(
            backward.msp_utility, rel=1e-9
        )
        np.testing.assert_allclose(
            np.sort(forward.demands), np.sort(backward.demands), rtol=1e-5
        )

    @settings(max_examples=25, deadline=None)
    @given(population, st.floats(min_value=1.5, max_value=4.0))
    def test_price_scales_with_sqrt_cost(self, pop, factor):
        """p*(kC) = sqrt(k) p*(C) while no drop-out threshold is crossed."""
        alphas = [a for a, _ in pop]
        datas = [d for _, d in pop]
        base = build(alphas, datas)
        scaled = base.with_unit_cost(5.0 * factor)
        p_base = base.unconstrained_equilibrium_price()
        p_scaled = scaled.unconstrained_equilibrium_price()
        assert p_scaled == pytest.approx(p_base * factor**0.5, rel=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(population, st.floats(min_value=0.5, max_value=3.0))
    def test_joint_alpha_data_scaling_fixes_price(self, pop, factor):
        """Scaling every (α_n, D_n) by k leaves p* unchanged and scales
        each demand by k (both terms of Eq. 8 are linear in k)."""
        alphas = [a for a, _ in pop]
        datas = [d for _, d in pop]
        base = build(alphas, datas).equilibrium()
        scaled = build(
            [a * factor for a in alphas], [d * factor for d in datas]
        ).equilibrium()
        assert scaled.price == pytest.approx(base.price, rel=1e-5)
        np.testing.assert_allclose(
            scaled.demands, base.demands * factor, rtol=1e-5
        )

    @settings(max_examples=20, deadline=None)
    @given(population)
    def test_replication_doubles_utility(self, pop):
        """Two copies of the population at the same price: same p*, twice
        the MSP utility (capacity off)."""
        alphas = [a for a, _ in pop]
        datas = [d for _, d in pop]
        single = build(alphas, datas).equilibrium()
        doubled = build(alphas * 2, datas * 2).equilibrium()
        assert doubled.price == pytest.approx(single.price, rel=1e-5)
        assert doubled.msp_utility == pytest.approx(
            2.0 * single.msp_utility, rel=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(population)
    def test_equilibrium_utility_bounds_every_round(self, pop):
        """No posted price can beat the equilibrium utility (Definition 1)."""
        alphas = [a for a, _ in pop]
        datas = [d for _, d in pop]
        market = build(alphas, datas)
        equilibrium = market.equilibrium()
        for price in np.linspace(5.0, 50.0, 60):
            assert market.msp_utility(float(price)) <= equilibrium.msp_utility * (
                1.0 + 1e-9
            )

    @settings(max_examples=25, deadline=None)
    @given(
        population,
        st.floats(min_value=6.0, max_value=49.0),
    )
    def test_vmu_utilities_nonnegative_at_best_response(self, pop, price):
        """Playing the best response can never hurt a VMU below zero
        (b = 0 is always feasible with utility 0)."""
        alphas = [a for a, _ in pop]
        datas = [d for _, d in pop]
        market = build(alphas, datas)
        outcome = market.round_outcome(price)
        assert (outcome.vmu_utilities >= -1e-12).all()

    @settings(max_examples=20, deadline=None)
    @given(population, st.floats(min_value=1.1, max_value=5.0))
    def test_capacity_only_ever_lowers_msp_utility(self, pop, shrink):
        """Adding a capacity constraint can only reduce the leader's
        equilibrium utility."""
        alphas = [a for a, _ in pop]
        datas = [d for _, d in pop]
        free = build(alphas, datas).equilibrium()
        capped_config = MarketConfig(max_bandwidth=50.0 / shrink)
        capped = build(alphas, datas, config=capped_config).equilibrium()
        assert capped.msp_utility <= free.msp_utility * (1.0 + 1e-9)
