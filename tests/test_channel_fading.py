"""Fading-model tests: unit-mean normalisation and distribution shapes."""

import numpy as np
import pytest

from repro.channel.fading import (
    LogNormalShadowing,
    NoFading,
    RayleighFading,
    RicianFading,
)
from repro.errors import ConfigurationError


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


class TestNoFading:
    def test_always_one(self, rng):
        np.testing.assert_array_equal(NoFading().sample(rng, size=10), np.ones(10))


class TestRayleighFading:
    def test_unit_mean(self, rng):
        samples = RayleighFading().sample(rng, size=200_000)
        assert samples.mean() == pytest.approx(1.0, abs=0.02)

    def test_exponential_variance(self, rng):
        # Power gain ~ Exp(1): variance 1.
        samples = RayleighFading().sample(rng, size=200_000)
        assert samples.var() == pytest.approx(1.0, abs=0.05)

    def test_nonnegative(self, rng):
        assert (RayleighFading().sample(rng, size=1000) >= 0.0).all()


class TestRicianFading:
    def test_unit_mean(self, rng):
        samples = RicianFading(k_factor=4.0).sample(rng, size=200_000)
        assert samples.mean() == pytest.approx(1.0, abs=0.02)

    def test_k_zero_matches_rayleigh_variance(self, rng):
        samples = RicianFading(k_factor=0.0).sample(rng, size=200_000)
        assert samples.var() == pytest.approx(1.0, abs=0.05)

    def test_large_k_concentrates(self, rng):
        # Strong LOS: variance shrinks toward 0.
        weak = RicianFading(k_factor=0.5).sample(rng, size=100_000).var()
        strong = RicianFading(k_factor=50.0).sample(rng, size=100_000).var()
        assert strong < weak / 5.0

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            RicianFading(k_factor=-1.0)


class TestLogNormalShadowing:
    def test_unit_mean(self, rng):
        samples = LogNormalShadowing(sigma_db=8.0).sample(rng, size=300_000)
        assert samples.mean() == pytest.approx(1.0, abs=0.03)

    def test_median_below_mean(self, rng):
        # Unit-mean lognormal has median exp(-s^2/2) < 1.
        samples = LogNormalShadowing(sigma_db=8.0).sample(rng, size=100_000)
        assert np.median(samples) < 1.0

    def test_positive(self, rng):
        assert (LogNormalShadowing(sigma_db=4.0).sample(rng, size=1000) > 0.0).all()

    def test_nonpositive_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            LogNormalShadowing(sigma_db=0.0)
