"""Checkpointing and demand-statistics tests."""

import numpy as np
import pytest

from repro.channel.link import paper_link
from repro.drl.checkpoints import load_agent, save_agent
from repro.drl.policy import ActionScaler, ActorCritic
from repro.drl.ppo import PPOAgent, PPOConfig
from repro.errors import ConfigurationError
from repro.mobility.coverage import HandoverEvent
from repro.mobility.demand import analyze_demand, capacity_for_demand
from repro.mobility.models import RouteFollower
from repro.mobility.road import straight_highway
from repro.mobility.trace import deploy_rsus_along_highway, simulate_handovers


class TestCheckpoints:
    def _agent(self, seed=0):
        network = ActorCritic(obs_dim=12, hidden_sizes=(16, 16), seed=seed)
        return PPOAgent(network, PPOConfig(learning_rate=1e-3)), ActionScaler(5.0, 50.0)

    def test_round_trip_preserves_policy(self, tmp_path):
        agent, scaler = self._agent(seed=3)
        path = save_agent(tmp_path / "agent.npz", agent, scaler, history_length=4)
        loaded_agent, loaded_scaler, meta = load_agent(path)
        obs = np.random.default_rng(0).normal(size=12)
        original, _, value_a = agent.act(obs, deterministic=True)
        restored, _, value_b = loaded_agent.act(obs, deterministic=True)
        np.testing.assert_allclose(original, restored)
        assert value_a == pytest.approx(value_b)
        assert loaded_scaler.low == 5.0 and loaded_scaler.high == 50.0
        assert meta["history_length"] == 4

    def test_architecture_rebuilt(self, tmp_path):
        agent, scaler = self._agent()
        path = save_agent(tmp_path / "a.npz", agent, scaler)
        loaded, _, meta = load_agent(path)
        assert meta["hidden_sizes"] == [16, 16]
        assert loaded.network.obs_dim == 12
        assert loaded.network.num_parameters() == agent.network.num_parameters()

    def test_suffix_added(self, tmp_path):
        agent, scaler = self._agent()
        path = save_agent(tmp_path / "bare", agent, scaler)
        assert path.suffix == ".npz"
        assert path.exists()

    def test_not_a_checkpoint_rejected(self, tmp_path):
        bogus = tmp_path / "junk.npz"
        np.savez(bogus, x=np.zeros(3))
        with pytest.raises(ConfigurationError, match="not a repro"):
            load_agent(bogus)

    def test_load_closes_file_so_checkpoint_is_deletable(self, tmp_path):
        """The npz handle must be closed on return — a leaked handle keeps
        the file undeletable on platforms with mandatory locking and trips
        ResourceWarning everywhere else."""
        import gc
        import warnings

        agent, scaler = self._agent()
        path = save_agent(tmp_path / "a.npz", agent, scaler)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            loaded, _, _ = load_agent(path)
            gc.collect()  # an unclosed NpzFile would warn on collection
        path.unlink()
        assert not path.exists()
        assert loaded.network.num_parameters() == agent.network.num_parameters()

    def _rewrite_checkpoint(self, path, mutate):
        """Rewrite a checkpoint's array set through ``mutate(arrays)``."""
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        mutate(arrays)
        np.savez(path, **arrays)

    def test_missing_parameter_rejected(self, tmp_path):
        agent, scaler = self._agent()
        path = save_agent(tmp_path / "a.npz", agent, scaler)

        def drop_one(arrays):
            name = next(k for k in arrays if k != "__checkpoint_meta__")
            del arrays[name]

        self._rewrite_checkpoint(path, drop_one)
        with pytest.raises(ConfigurationError, match="missing parameters"):
            load_agent(path)

    def test_unexpected_parameter_rejected(self, tmp_path):
        agent, scaler = self._agent()
        path = save_agent(tmp_path / "a.npz", agent, scaler)
        self._rewrite_checkpoint(
            path, lambda arrays: arrays.update(rogue__weight=np.zeros(3))
        )
        with pytest.raises(ConfigurationError, match="unexpected parameters"):
            load_agent(path)

    def test_mismatched_architecture_rejected(self, tmp_path):
        """Meta claiming a different width than the stored arrays must be
        a ConfigurationError, not a bare KeyError/shape blow-up."""
        import json as json_module

        agent, scaler = self._agent()
        path = save_agent(tmp_path / "a.npz", agent, scaler)

        def shrink_hidden(arrays):
            meta = json_module.loads(
                bytes(arrays["__checkpoint_meta__"]).decode("utf-8")
            )
            meta["hidden_sizes"] = [8, 8]
            arrays["__checkpoint_meta__"] = np.frombuffer(
                json_module.dumps(meta).encode("utf-8"), dtype=np.uint8
            )

        self._rewrite_checkpoint(path, shrink_hidden)
        with pytest.raises(ConfigurationError):
            load_agent(path)

    def test_loaded_agent_can_keep_training(self, tmp_path):
        from repro.drl.buffer import RolloutBuffer

        agent, scaler = self._agent()
        path = save_agent(tmp_path / "a.npz", agent, scaler)
        loaded, _, _ = load_agent(path)
        rng = np.random.default_rng(0)
        buffer = RolloutBuffer(gamma=0.0)
        for _ in range(8):
            obs = rng.normal(size=12)
            raw, log_prob, value = loaded.act(obs, seed=rng)
            buffer.add(obs, raw, 1.0, log_prob, value)
        buffer.finalize(0.0)
        stats = loaded.update(buffer.sample(8, seed=0))
        assert np.isfinite(stats.policy_loss)


def _event(vehicle, time, src, dst):
    return HandoverEvent(
        vehicle_id=vehicle,
        time_s=time,
        source_rsu_id=src,
        destination_rsu_id=dst,
        position_m=(0.0, 0.0),
    )


class TestAnalyzeDemand:
    def test_counts_and_rate(self):
        events = [
            _event("v0", 0.0, None, "r0"),  # attach: not a migration
            _event("v0", 10.0, "r0", "r1"),
            _event("v0", 30.0, "r1", "r2"),
            _event("v1", 20.0, "r0", "r1"),
        ]
        profile = analyze_demand(events, duration_s=100.0)
        assert profile.total_migrations == 3
        assert profile.arrival_rate_hz == pytest.approx(0.03)
        assert profile.per_vehicle_rate_hz == pytest.approx(0.015)

    def test_busiest_pair(self):
        events = [
            _event("v0", 1.0, "r0", "r1"),
            _event("v1", 2.0, "r0", "r1"),
            _event("v0", 3.0, "r1", "r2"),
        ]
        profile = analyze_demand(events, duration_s=10.0)
        assert profile.busiest_pair == ("r0", "r1", 2)

    def test_interarrival_statistics(self):
        events = [_event("v0", float(t), "a", "b") for t in (0.0, 10.0, 20.0, 30.0)]
        profile = analyze_demand(events, duration_s=40.0)
        assert profile.mean_interarrival_s == pytest.approx(10.0)
        assert profile.interarrival_cv == pytest.approx(0.0)  # deterministic

    def test_too_few_events_gives_nan(self):
        profile = analyze_demand([_event("v0", 1.0, "a", "b")], duration_s=10.0)
        assert np.isnan(profile.mean_interarrival_s)

    def test_highway_demand_is_regular(self):
        """Constant-speed highway driving yields a low-CV arrival stream."""
        net = straight_highway(5000.0, num_junctions=11, speed_limit_mps=25.0)
        rsus = deploy_rsus_along_highway(5000.0)
        agents = [RouteFollower("v0", net, [f"j{k}" for k in range(11)])]
        sim = simulate_handovers(agents, rsus, duration_s=220.0)
        profile = analyze_demand(sim.events, duration_s=220.0)
        assert profile.total_migrations == 5
        assert profile.interarrival_cv < 0.3


class TestCapacitySizing:
    def _profile(self, rate):
        return analyze_demand(
            [_event("v0", float(i) / rate, "a", "b") for i in range(1, 50)],
            duration_s=49.0 / rate,
        )

    def test_scales_with_rate(self):
        se = paper_link().spectral_efficiency
        slow = capacity_for_demand(
            self._profile(0.02), mean_data_units=2.0, target_aotm=0.5,
            spectral_efficiency=se,
        )
        fast = capacity_for_demand(
            self._profile(0.08), mean_data_units=2.0, target_aotm=0.5,
            spectral_efficiency=se,
        )
        assert fast == pytest.approx(4.0 * slow, rel=0.1)

    def test_littles_law_formula(self):
        se = paper_link().spectral_efficiency
        profile = self._profile(0.1)
        capacity = capacity_for_demand(
            profile, mean_data_units=2.0, target_aotm=0.5,
            spectral_efficiency=se, concurrency_margin=1.0,
        )
        expected = (profile.arrival_rate_hz * 0.5) * (2.0 / (0.5 * se))
        assert capacity == pytest.approx(expected)

    def test_margin_multiplies(self):
        se = paper_link().spectral_efficiency
        profile = self._profile(0.1)
        base = capacity_for_demand(
            profile, mean_data_units=2.0, target_aotm=0.5,
            spectral_efficiency=se, concurrency_margin=1.0,
        )
        padded = capacity_for_demand(
            profile, mean_data_units=2.0, target_aotm=0.5,
            spectral_efficiency=se, concurrency_margin=2.0,
        )
        assert padded == pytest.approx(2.0 * base)
