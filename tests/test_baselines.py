"""Baseline pricing-policy tests."""

import numpy as np
import pytest

from repro.baselines import (
    FixedPricing,
    GreedyPricing,
    LearnedPricing,
    OraclePricing,
    RandomPricing,
)
from repro.core.mechanism import GameHistory, RoundRecord, run_rounds
from repro.core.stackelberg import StackelbergMarket
from repro.drl.policy import ActionScaler, ActorCritic
from repro.drl.ppo import PPOAgent
from repro.entities.vmu import paper_fig2_population
from repro.errors import ConfigurationError


@pytest.fixture
def market():
    return StackelbergMarket(paper_fig2_population())


def history_with(prices_utilities) -> GameHistory:
    history = GameHistory()
    for i, (price, utility) in enumerate(prices_utilities):
        history.append(
            RoundRecord(round_index=i, price=price, demands=(0.1,), msp_utility=utility)
        )
    return history


class TestRandomPricing:
    def test_within_bounds(self):
        policy = RandomPricing(5.0, 50.0, seed=0)
        prices = [policy.propose_price(GameHistory()) for _ in range(200)]
        assert all(5.0 <= p <= 50.0 for p in prices)

    def test_deterministic_given_seed(self):
        a = RandomPricing(5.0, 50.0, seed=7).propose_price(GameHistory())
        b = RandomPricing(5.0, 50.0, seed=7).propose_price(GameHistory())
        assert a == b

    def test_spreads_over_range(self):
        policy = RandomPricing(5.0, 50.0, seed=0)
        prices = np.array([policy.propose_price(GameHistory()) for _ in range(500)])
        assert prices.std() > 5.0

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            RandomPricing(50.0, 5.0)


class TestGreedyPricing:
    def test_replays_best_price(self):
        policy = GreedyPricing(5.0, 50.0, epsilon=0.0, seed=0)
        history = history_with([(10.0, 2.0), (25.0, 6.4), (40.0, 4.0)])
        assert policy.propose_price(history) == 25.0

    def test_explores_on_empty_history(self):
        policy = GreedyPricing(5.0, 50.0, epsilon=0.0, seed=0)
        price = policy.propose_price(GameHistory())
        assert 5.0 <= price <= 50.0

    def test_epsilon_exploration_rate(self):
        policy = GreedyPricing(5.0, 50.0, epsilon=0.3, seed=0)
        history = history_with([(25.0, 6.4)])
        prices = [policy.propose_price(history) for _ in range(2000)]
        explore_fraction = np.mean([p != 25.0 for p in prices])
        assert explore_fraction == pytest.approx(0.3, abs=0.05)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            GreedyPricing(5.0, 50.0, epsilon=1.5)

    def test_improves_with_rounds(self, market):
        """Greedy's running best utility is monotone across rounds."""
        policy = GreedyPricing(5.0, 50.0, epsilon=0.2, seed=0)
        history, outcomes = run_rounds(market, policy, 100)
        bests = np.maximum.accumulate([o.msp_utility for o in outcomes])
        assert bests[-1] >= bests[0]
        assert bests[-1] >= 0.95 * market.equilibrium().msp_utility


class TestFixedAndOracle:
    def test_fixed_constant(self):
        policy = FixedPricing(30.0)
        assert policy.propose_price(GameHistory()) == 30.0

    def test_fixed_invalid(self):
        with pytest.raises(ConfigurationError):
            FixedPricing(0.0)

    def test_oracle_is_equilibrium(self, market):
        policy = OraclePricing(market)
        assert policy.propose_price(GameHistory()) == pytest.approx(
            market.equilibrium().price
        )

    def test_oracle_utility_dominates_fixed(self, market):
        _, oracle_outcomes = run_rounds(market, OraclePricing(market), 1)
        for fixed_price in (10.0, 20.0, 40.0):
            _, fixed_outcomes = run_rounds(market, FixedPricing(fixed_price), 1)
            assert (
                oracle_outcomes[0].msp_utility
                >= fixed_outcomes[0].msp_utility - 1e-9
            )


class TestLearnedPricing:
    def _policy(self, market, history_length=4):
        network = ActorCritic(
            obs_dim=history_length * (1 + market.num_vmus), seed=0
        )
        agent = PPOAgent(network)
        scaler = ActionScaler(
            market.config.unit_cost, market.config.max_price
        )
        return LearnedPricing(
            agent, scaler, market, history_length=history_length, seed=0
        )

    def test_feasible_price_from_empty_history(self, market):
        policy = self._policy(market)
        price = policy.propose_price(GameHistory())
        assert 5.0 <= price <= 50.0

    def test_feasible_price_from_partial_history(self, market):
        policy = self._policy(market)
        history = history_with([(20.0, 3.0)])
        # pads missing rounds, consumes real ones
        history.records[0] = RoundRecord(
            round_index=0, price=20.0, demands=(0.1, 0.2), msp_utility=3.0
        )
        price = policy.propose_price(history)
        assert 5.0 <= price <= 50.0

    def test_untrained_policy_near_mid_price(self, market):
        # Actor head init gain 0.01 -> raw ~ 0 -> mid price.
        policy = self._policy(market)
        price = policy.propose_price(GameHistory())
        assert price == pytest.approx(27.5, abs=2.0)

    def test_runs_in_market_loop(self, market):
        policy = self._policy(market)
        history, outcomes = run_rounds(market, policy, 5)
        assert len(outcomes) == 5

    def test_invalid_history_length(self, market):
        network = ActorCritic(obs_dim=3, seed=0)
        agent = PPOAgent(network)
        scaler = ActionScaler(5.0, 50.0)
        with pytest.raises(ConfigurationError):
            LearnedPricing(agent, scaler, market, history_length=0)
