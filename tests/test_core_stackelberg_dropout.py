"""Equilibria in the follower-dropout regime.

The generic property tests draw (α, D) from the paper's ranges, where
every drop-out threshold ``α·SE/D`` sits far above ``p_max`` — so the
active-set machinery in ``_segment_candidates`` never gets exercised
there. These tests construct markets whose thresholds fall *inside*
``[C, p_max]`` and verify the solver handles the kinked leader utility:
pricing some VMUs out can be optimal, and the closed-form-per-segment
candidates must still match a brute-force search.
"""

import numpy as np
import pytest

from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import VmuProfile
from repro.game.solvers import grid_then_golden

NO_CAP = MarketConfig(enforce_capacity=False)


def market_with(profiles, config=NO_CAP) -> StackelbergMarket:
    vmus = [
        VmuProfile(f"v{i}", data_size_mb=d, immersion_coef=a)
        for i, (a, d) in enumerate(profiles)
    ]
    return StackelbergMarket(vmus, config=config)


class TestDropoutRegime:
    def test_threshold_inside_price_range(self):
        # α=5, D=1000 MB -> threshold 5·38.54/10 ≈ 19.3, inside [5, 50].
        market = market_with([(5.0, 1000.0)])
        threshold = float(market.dropout_thresholds()[0])
        assert 5.0 < threshold < 50.0

    def test_single_vmu_equilibrium_below_threshold(self):
        """With one VMU the optimal price never prices it out."""
        market = market_with([(5.0, 1000.0)])
        eq = market.equilibrium()
        assert eq.price < float(market.dropout_thresholds()[0])
        assert eq.demands[0] > 0.0

    def test_mixed_market_drops_low_value_vmu(self):
        """A premium VMU plus a marginal one: serving only the premium
        VMU at a high price can beat serving both cheaply."""
        market = market_with([(20.0, 100.0), (5.0, 2500.0)])
        thresholds = market.dropout_thresholds()
        eq = market.equilibrium()
        # the marginal VMU's threshold is ~7.7; the optimum prices it out
        assert eq.price > float(thresholds.min())
        assert eq.demands[1] == 0.0
        assert eq.demands[0] > 0.0

    def test_equilibrium_matches_brute_force_with_kinks(self):
        """The kinked leader utility still yields the global optimum."""
        configs = [
            [(20.0, 100.0), (5.0, 2500.0)],
            [(18.0, 120.0), (6.0, 1800.0), (5.0, 3000.0)],
            [(5.0, 900.0), (5.0, 1100.0)],
            [(12.0, 150.0), (8.0, 700.0), (5.0, 1500.0)],
        ]
        for profiles in configs:
            market = market_with(profiles)
            eq = market.equilibrium()
            _, brute_value = grid_then_golden(
                market.msp_utility, 5.0, 50.0, grid_points=8192
            )
            assert eq.msp_utility == pytest.approx(brute_value, rel=1e-6), profiles

    def test_leader_utility_continuous_across_threshold(self):
        """Demand -> 0 smoothly at the threshold, so U_s is continuous."""
        market = market_with([(5.0, 1000.0), (10.0, 200.0)])
        threshold = float(market.dropout_thresholds()[0])
        below = market.msp_utility(threshold * (1.0 - 1e-9))
        above = market.msp_utility(threshold * (1.0 + 1e-9))
        assert below == pytest.approx(above, rel=1e-6)

    def test_all_but_one_dropped(self):
        """Price above every threshold but one leaves a 1-VMU market."""
        market = market_with([(20.0, 100.0), (5.0, 2000.0), (5.0, 2600.0)])
        thresholds = np.sort(market.dropout_thresholds())
        price = float((thresholds[1] + thresholds[2]) / 2.0)
        outcome = market.round_outcome(price)
        assert (outcome.demands > 0).sum() == 1

    def test_capacity_and_dropout_interact(self):
        """Capacity rationing applies to the surviving active set only."""
        config = MarketConfig(max_bandwidth=5.0)  # tight cap
        market = market_with([(20.0, 100.0), (5.0, 2500.0)], config=config)
        eq = market.equilibrium()
        total_market = market.to_market_units(eq.total_bandwidth)
        assert total_market <= 5.0 * (1.0 + 1e-9)
        assert eq.demands[1] == 0.0

    def test_equilibrium_deterministic(self):
        market = market_with([(20.0, 100.0), (5.0, 2500.0)])
        a = market.equilibrium()
        b = market.equilibrium()
        assert a.price == b.price
