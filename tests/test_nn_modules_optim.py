"""Module/optimiser/distribution tests for the neural substrate."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import NeuralNetworkError
from repro.nn.distributions import DiagonalGaussian
from repro.nn.init import constant, orthogonal, xavier_uniform, zeros
from repro.nn.modules import MLP, Linear, ReLU, Sequential, Tanh
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.tensor import Tensor


class TestInit:
    def test_orthogonal_columns(self):
        w = orthogonal(8, 4, seed=0)
        gram = w.T @ w
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-10)

    def test_orthogonal_gain(self):
        w = orthogonal(8, 4, gain=3.0, seed=0)
        np.testing.assert_allclose(w.T @ w, 9.0 * np.eye(4), atol=1e-9)

    def test_orthogonal_wide(self):
        w = orthogonal(4, 8, seed=0)
        np.testing.assert_allclose(w @ w.T, np.eye(4), atol=1e-10)

    def test_orthogonal_deterministic(self):
        np.testing.assert_array_equal(orthogonal(5, 5, seed=1), orthogonal(5, 5, seed=1))

    def test_xavier_bounds(self):
        w = xavier_uniform(100, 50, seed=0)
        limit = np.sqrt(6.0 / 150.0)
        assert np.abs(w).max() <= limit

    def test_invalid_fans(self):
        with pytest.raises(ValueError):
            orthogonal(0, 4)
        with pytest.raises(ValueError):
            xavier_uniform(4, 0)

    def test_zeros_and_constant(self):
        assert zeros(3).sum() == 0.0
        np.testing.assert_array_equal(constant(-0.5, 2), [-0.5, -0.5])


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, seed=0)
        out = layer(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 3)

    def test_forward_math(self):
        layer = Linear(2, 2, seed=0)
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_wrong_width_rejected(self):
        with pytest.raises(NeuralNetworkError):
            Linear(4, 3)(Tensor(np.zeros((5, 5))))

    def test_parameters_registered(self):
        layer = Linear(4, 3)
        params = list(layer.parameters())
        assert len(params) == 2  # weight + bias


class TestModuleInfrastructure:
    def test_mlp_parameter_count(self):
        # (12->64) + (64->64) + (64->1) weights + biases.
        net = MLP(12, (64, 64), 1, seed=0)
        expected = 12 * 64 + 64 + 64 * 64 + 64 + 64 * 1 + 1
        assert net.num_parameters() == expected

    def test_named_parameters_unique(self):
        net = MLP(4, (8,), 2, seed=0)
        names = [name for name, _ in net.named_parameters()]
        assert len(names) == len(set(names))

    def test_state_dict_round_trip(self):
        a = MLP(4, (8,), 2, seed=0)
        b = MLP(4, (8,), 2, seed=1)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        assert not np.allclose(a(x).data, b(x).data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_mismatch_rejected(self):
        a = MLP(4, (8,), 2, seed=0)
        with pytest.raises(NeuralNetworkError, match="mismatch"):
            a.load_state_dict({"bogus": np.zeros(3)})

    def test_state_dict_shape_checked(self):
        a = MLP(4, (8,), 2, seed=0)
        state = a.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(NeuralNetworkError, match="shape"):
            a.load_state_dict(state)

    def test_zero_grad_clears(self):
        net = MLP(2, (4,), 1, seed=0)
        out = net(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_sequential_indexing(self):
        seq = Sequential(Linear(2, 3), Tanh(), Linear(3, 1))
        assert len(seq) == 3
        assert isinstance(seq[1], Tanh)

    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([[-1.0, 2.0]])))
        np.testing.assert_array_equal(out.data, [[0.0, 2.0]])

    def test_mlp_unknown_activation(self):
        with pytest.raises(NeuralNetworkError):
            MLP(2, (4,), 1, activation="swish")


class TestSgd:
    def test_single_step_math(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], learning_rate=0.1)
        (p * 3.0).backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 3.0)

    def test_momentum_accumulates(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], learning_rate=0.1, momentum=0.9)
        for _ in range(2):
            p.zero_grad()
            (p * 1.0 + 1.0).backward()  # grad = 1
            opt.step()
        # v1 = -0.1; v2 = 0.9*(-0.1) - 0.1 = -0.19; total -0.29.
        assert p.data[0] == pytest.approx(-0.29)

    def test_invalid_momentum(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        with pytest.raises(NeuralNetworkError):
            SGD([p], 0.1, momentum=1.0)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([p], learning_rate=0.01)
        (p * 5.0).backward()
        opt.step()
        # Bias-corrected first Adam step ≈ -lr * sign(grad).
        assert p.data[0] == pytest.approx(-0.01, rel=1e-4)

    def test_quadratic_convergence(self):
        p = Tensor(np.array([5.0]), requires_grad=True)
        opt = Adam([p], learning_rate=0.1)
        for _ in range(500):
            opt.zero_grad()
            ((p - 2.0) ** 2.0).sum().backward()
            opt.step()
        assert p.data[0] == pytest.approx(2.0, abs=1e-3)

    def test_step_count(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([p], 0.01)
        (p * 1.0).backward()
        opt.step()
        assert opt.step_count == 1

    def test_skips_gradless_params(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], 0.01)
        opt.step()  # no backward happened
        assert p.data[0] == 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(NeuralNetworkError):
            Adam([], 0.01)

    def test_invalid_hparams(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        with pytest.raises(NeuralNetworkError):
            Adam([p], -1.0)
        with pytest.raises(NeuralNetworkError):
            Adam([p], 0.1, beta1=1.0)
        with pytest.raises(NeuralNetworkError):
            Adam([p], 0.1, epsilon=0.0)


class TestClipGradNorm:
    def test_no_clip_below_max(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        (p * 3.0).backward()
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(3.0)
        assert p.grad[0] == pytest.approx(3.0)

    def test_clips_above_max(self):
        p = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (p * Tensor(np.array([3.0, 4.0]))).sum().backward()
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_invalid_max_norm(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(NeuralNetworkError):
            clip_grad_norm([p], 0.0)


class TestDiagonalGaussian:
    def _dist(self, mean=(0.5, -0.2), log_std=(0.1, -0.3)):
        return DiagonalGaussian(
            Tensor(np.array([list(mean)])), Tensor(np.array(list(log_std)))
        )

    def test_log_prob_matches_scipy(self):
        dist = self._dist()
        actions = np.array([[0.3, 0.1]])
        ours = dist.log_prob(actions).data[0]
        reference = (
            stats.norm(0.5, np.exp(0.1)).logpdf(0.3)
            + stats.norm(-0.2, np.exp(-0.3)).logpdf(0.1)
        )
        assert ours == pytest.approx(reference, rel=1e-10)

    def test_entropy_analytic(self):
        dist = self._dist()
        expected = sum(
            0.5 * np.log(2.0 * np.pi * np.e) + ls for ls in (0.1, -0.3)
        )
        assert dist.entropy().data[0] == pytest.approx(expected, rel=1e-10)

    def test_kl_to_self_zero(self):
        dist = self._dist()
        assert dist.kl_divergence(dist).data[0] == pytest.approx(0.0, abs=1e-12)

    def test_kl_nonnegative(self):
        a = self._dist()
        b = self._dist(mean=(1.0, 1.0), log_std=(0.5, 0.5))
        assert a.kl_divergence(b).data[0] > 0.0

    def test_sampling_statistics(self):
        mean = Tensor(np.tile([[1.0]], (200_000, 1)))
        dist = DiagonalGaussian(mean, Tensor(np.array([np.log(2.0)])))
        samples = dist.sample(seed=0)
        assert samples.mean() == pytest.approx(1.0, abs=0.02)
        assert samples.std() == pytest.approx(2.0, abs=0.02)

    def test_mode_is_mean(self):
        dist = self._dist()
        np.testing.assert_array_equal(dist.mode(), [[0.5, -0.2]])

    def test_log_prob_shape_checked(self):
        with pytest.raises(ValueError):
            self._dist().log_prob(np.zeros((2, 2)))

    def test_log_prob_differentiable(self):
        mean = Tensor(np.array([[0.0]]), requires_grad=True)
        dist = DiagonalGaussian(mean, Tensor(np.array([0.0])))
        dist.log_prob(np.array([[1.0]])).sum().backward()
        # d/dμ logN(x|μ,1) = (x-μ) = 1.
        assert mean.grad[0, 0] == pytest.approx(1.0)
