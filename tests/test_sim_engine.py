"""Batched simulation engine tests.

The load-bearing guarantee: the batched price-grid evaluation and the
scalar per-price Stackelberg solves are the *same* computation — verified
here on 50 random markets (property test), on the equilibrium solver, and
on the policy-evaluation fast paths.
"""

import numpy as np
import pytest

from repro.baselines import FixedPricing, GreedyPricing, OraclePricing, RandomPricing
from repro.channel.ofdma import proportional_rationing
from repro.core.mechanism import GameHistory, run_rounds
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.core.utilities import follower_best_response, msp_utility, vmu_utilities
from repro.entities.vmu import VmuProfile, paper_fig2_population
from repro.errors import ConfigurationError
from repro.sim import (
    PriceBatchOutcome,
    batched_landscape,
    plan_prices,
    play_policy,
    price_grid,
    scalar_landscape,
)


@pytest.fixture
def market():
    return StackelbergMarket(paper_fig2_population())


def random_market(rng: np.random.Generator) -> StackelbergMarket:
    """A random-but-valid market: population, cost, and capacity all drawn."""
    num_vmus = int(rng.integers(1, 7))
    vmus = [
        VmuProfile(
            vmu_id=f"vmu-{n}",
            data_size_mb=float(rng.uniform(50.0, 400.0)),
            immersion_coef=float(rng.uniform(1.0, 10.0)),
        )
        for n in range(num_vmus)
    ]
    config = MarketConfig(
        unit_cost=float(rng.uniform(1.0, 10.0)),
        max_price=float(rng.uniform(20.0, 80.0)),
        max_bandwidth=float(rng.uniform(5.0, 60.0)),
    )
    return StackelbergMarket(vmus, config=config)


class TestVectorizedLandscapeProperty:
    def test_fifty_random_markets_match_scalar_solves(self):
        """Satellite acceptance: for 50 random markets the vectorised
        price-grid leader landscape matches per-price scalar solves to
        1e-9 (bitwise equality is expected and asserted where exact)."""
        rng = np.random.default_rng(20230429)
        for _ in range(50):
            market = random_market(rng)
            grid = price_grid(market, 64)
            batched = batched_landscape(market, grid)
            scalar = scalar_landscape(market, grid)
            np.testing.assert_allclose(
                batched.msp_utilities, scalar.msp_utilities, rtol=0.0, atol=1e-9
            )
            np.testing.assert_allclose(
                batched.allocations, scalar.allocations, rtol=0.0, atol=1e-9
            )
            np.testing.assert_allclose(
                batched.vmu_utilities, scalar.vmu_utilities, rtol=0.0, atol=1e-9
            )
            assert (batched.capacity_binding == scalar.capacity_binding).all()
            # The scalar path delegates to the batched path with P = 1, so
            # the agreement is actually exact, not just 1e-9.
            assert (batched.msp_utilities == scalar.msp_utilities).all()

    def test_equilibrium_unchanged_by_vectorized_scan(self):
        """The vectorised grid scan inside equilibrium() must find the same
        optimum as a brute-force scalar scan."""
        rng = np.random.default_rng(7)
        for _ in range(10):
            market = random_market(rng)
            eq = market.equilibrium()
            grid = price_grid(market, 2048)
            brute = float(market.msp_utilities(grid).max())
            assert eq.msp_utility >= brute - 1e-6


class TestPriceBatchOutcome:
    def test_row_matches_round_outcome(self, market):
        prices = np.array([6.0, 20.0, 45.0])
        batch = market.outcomes_batch(prices)
        assert len(batch) == 3
        for i, price in enumerate(prices):
            outcome = market.round_outcome(float(price))
            row = batch.row(i)
            assert row.price == outcome.price
            assert row.msp_utility == outcome.msp_utility
            assert (row.allocations == outcome.allocations).all()
            assert (row.vmu_utilities == outcome.vmu_utilities).all()
            assert row.capacity_binding == outcome.capacity_binding

    def test_best_picks_argmax(self, market):
        batch = market.leader_landscape(grid_points=128)
        best = batch.best()
        assert best.msp_utility == pytest.approx(float(batch.msp_utilities.max()))

    def test_invalid_price_batches_rejected(self, market):
        with pytest.raises(ConfigurationError):
            market.outcomes_batch(np.array([]))
        with pytest.raises(ConfigurationError):
            market.outcomes_batch(np.array([10.0, -1.0]))
        with pytest.raises(ConfigurationError):
            market.outcomes_batch(np.array([[10.0, 20.0]]))

    def test_leader_landscape_spans_feasible_interval(self, market):
        batch = market.leader_landscape(grid_points=16)
        config = market.config
        assert batch.prices[0] == pytest.approx(config.unit_cost)
        assert batch.prices[-1] == pytest.approx(config.max_price)


class TestVectorizedPrimitives:
    def test_follower_best_response_price_batch(self, market):
        prices = np.array([10.0, 25.0, 40.0])
        batched = follower_best_response(
            market.immersion_coefs,
            market.data_units,
            prices,
            market.spectral_efficiency,
        )
        assert batched.shape == (3, market.num_vmus)
        for i, price in enumerate(prices):
            scalar = follower_best_response(
                market.immersion_coefs,
                market.data_units,
                float(price),
                market.spectral_efficiency,
            )
            assert (batched[i] == scalar).all()

    def test_msp_utility_price_batch(self):
        prices = np.array([10.0, 20.0])
        bands = np.array([[1.0, 2.0], [0.5, 0.25]])
        batched = msp_utility(prices, 5.0, bands)
        assert batched.shape == (2,)
        for i, price in enumerate(prices):
            assert batched[i] == msp_utility(float(price), 5.0, bands[i])

    def test_msp_utility_batch_shape_mismatch(self):
        with pytest.raises(ValueError):
            msp_utility(np.array([10.0, 20.0]), 5.0, np.array([1.0, 2.0, 3.0]))

    def test_vmu_utilities_price_batch(self, market):
        prices = np.array([10.0, 25.0])
        bands = market.best_response_batch(prices)
        batched = vmu_utilities(
            market.immersion_coefs,
            market.data_units,
            bands,
            prices,
            market.spectral_efficiency,
        )
        for i, price in enumerate(prices):
            scalar = vmu_utilities(
                market.immersion_coefs,
                market.data_units,
                bands[i],
                float(price),
                market.spectral_efficiency,
            )
            assert (batched[i] == scalar).all()

    def test_proportional_rationing_batch_rows_independent(self):
        demands = np.array([[6.0, 2.0], [1.0, 2.0], [0.0, 0.0]])
        granted = proportional_rationing(demands, 4.0)
        assert granted.shape == demands.shape
        assert granted.sum(axis=-1)[0] == pytest.approx(4.0)
        assert (granted[1] == demands[1]).all()
        assert (granted[2] == 0.0).all()
        for row in range(3):
            legacy = proportional_rationing([float(d) for d in demands[row]], 4.0)
            np.testing.assert_allclose(granted[row], legacy, rtol=0.0, atol=1e-12)

    def test_proportional_rationing_list_api_unchanged(self):
        assert proportional_rationing([1.0, 2.0], 10.0) == [1.0, 2.0]
        assert isinstance(proportional_rationing([1.0], 10.0), list)


class TestPlayPolicy:
    def test_matches_run_rounds_for_random(self, market):
        """The price-vector fast path must reproduce the sequential loop
        exactly — same RNG stream consumption, same outcomes."""
        _, outcomes = run_rounds(market, RandomPricing(5.0, 50.0, seed=3), 20)
        history, played = play_policy(market, RandomPricing(5.0, 50.0, seed=3), 20)
        assert len(history) == 20
        for k, outcome in enumerate(outcomes):
            assert played.prices[k] == outcome.price
            assert played.msp_utilities[k] == outcome.msp_utility
            assert (played.allocations[k] == outcome.allocations).all()

    def test_matches_run_rounds_for_greedy(self, market):
        """Greedy has no fast path; the memoised sequential path must agree
        with the classic loop (identical RNG stream and history)."""
        history_a, outcomes = run_rounds(
            market, GreedyPricing(5.0, 50.0, seed=11), 30
        )
        history_b, played = play_policy(
            market, GreedyPricing(5.0, 50.0, seed=11), 30
        )
        assert [r.price for r in history_b.records] == [
            r.price for r in history_a.records
        ]
        for k, outcome in enumerate(outcomes):
            assert played.msp_utilities[k] == outcome.msp_utility

    def test_fixed_and_oracle_use_fast_path(self, market):
        for policy in (FixedPricing(20.0), OraclePricing(market)):
            assert plan_prices(policy, GameHistory(), 5) is not None
            _, played = play_policy(market, policy, 5)
            assert len(played) == 5
            assert (played.prices == played.prices[0]).all()

    def test_greedy_declines_fast_path(self, market):
        assert plan_prices(GreedyPricing(5.0, 50.0, seed=0), GameHistory(), 5) is None

    def test_history_records_appended(self, market):
        history, played = play_policy(market, FixedPricing(20.0), 4)
        assert [r.round_index for r in history.records] == [0, 1, 2, 3]
        assert history.records[0].msp_utility == played.msp_utilities[0]

    def test_zero_rounds_rejected(self, market):
        with pytest.raises(ValueError):
            play_policy(market, FixedPricing(20.0), 0)

    def test_played_rounds_best_index(self, market):
        _, played = play_policy(market, RandomPricing(5.0, 50.0, seed=5), 25)
        assert played.best_index == int(np.argmax(played.msp_utilities))
        assert isinstance(played, PriceBatchOutcome)
