"""Stackelberg-market tests: the paper's theorems, numbers, and constraints.

This file is the heart of the reproduction's correctness story:
- Theorem 1 (follower best response is the unique argmax) is checked by
  property-based grid search;
- Theorem 2 (leader's closed form) is cross-validated against a global
  numeric search over random markets;
- every numeric anchor the paper reports (p* = 25/34, MSP utility
  7.03/20.35, bandwidth 27.9/23.4) is asserted within tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.core.utilities import vmu_utility
from repro.entities.vmu import VmuProfile, paper_fig2_population, uniform_population
from repro.errors import ConfigurationError, InfeasibleMarketError
from repro.game.analysis import is_concave_on, verify_best_response
from repro.game.solvers import grid_then_golden


@pytest.fixture
def market() -> StackelbergMarket:
    return StackelbergMarket(paper_fig2_population())


def random_market(alphas, datas, cost) -> StackelbergMarket:
    vmus = [
        VmuProfile(f"v{i}", data_size_mb=d, immersion_coef=a)
        for i, (a, d) in enumerate(zip(alphas, datas))
    ]
    return StackelbergMarket(vmus, config=MarketConfig(unit_cost=cost))


class TestFollowerStage:
    def test_best_response_closed_form(self, market):
        p = 20.0
        se = market.spectral_efficiency
        expected = np.array([5.0 / p - 2.0 / se, 5.0 / p - 1.0 / se])
        np.testing.assert_allclose(market.best_response(p), expected)

    def test_best_response_truncates_at_dropout(self, market):
        thresholds = market.dropout_thresholds()
        price = float(thresholds.min()) * 1.01
        demands = market.best_response(price)
        assert demands[0] == 0.0  # the big-D VMU drops out first
        assert demands[1] > 0.0

    def test_dropout_thresholds_formula(self, market):
        se = market.spectral_efficiency
        np.testing.assert_allclose(
            market.dropout_thresholds(), [5.0 * se / 2.0, 5.0 * se / 1.0]
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=6.0, max_value=49.0),
        st.floats(min_value=5.0, max_value=20.0),
        st.floats(min_value=1.0, max_value=3.0),
    )
    def test_theorem1_best_response_is_argmax(self, price, alpha, data):
        """Theorem 1: Eq. (8) maximises the strictly concave U_n(b)."""
        market = random_market([alpha], [data * 100.0], 5.0)
        se = market.spectral_efficiency
        b_star = float(market.best_response(price)[0])

        def utility(b):
            return vmu_utility(alpha, data, b, price, se)

        assert verify_best_response(utility, b_star, 0.0, 2.0, tolerance=1e-7)

    def test_follower_utility_concave(self, market):
        se = market.spectral_efficiency
        assert is_concave_on(
            lambda b: vmu_utility(5.0, 2.0, b, 20.0, se), 0.0, 2.0
        )


class TestLeaderStage:
    def test_unconstrained_closed_form(self, market):
        # p* = sqrt(C SE Σα / ΣD).
        se = market.spectral_efficiency
        expected = np.sqrt(5.0 * se * 10.0 / 3.0)
        assert market.unconstrained_equilibrium_price() == pytest.approx(expected)

    def test_leader_utility_concave_between_dropouts(self, market):
        thresholds = market.dropout_thresholds()
        assert is_concave_on(
            market.msp_utility, 5.0, float(thresholds.min()) - 1.0
        )

    def test_equilibrium_is_global_argmax(self, market):
        eq = market.equilibrium()
        argmax, value = grid_then_golden(
            market.msp_utility, 5.0, 50.0, grid_points=2048
        )
        assert eq.msp_utility == pytest.approx(value, rel=1e-9)
        assert eq.price == pytest.approx(argmax, abs=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(min_value=5.0, max_value=20.0), min_size=1, max_size=5),
        st.floats(min_value=1.0, max_value=9.0),
    )
    def test_theorem2_closed_form_matches_numeric(self, alphas, cost):
        """Closed-form equilibrium == brute numeric search, random markets."""
        datas = [100.0 + 40.0 * i for i in range(len(alphas))]
        market = random_market(alphas, datas, cost)
        eq = market.equilibrium()
        _, numeric_value = grid_then_golden(
            market.msp_utility, cost, 50.0, grid_points=4096
        )
        assert eq.msp_utility == pytest.approx(numeric_value, rel=1e-6)


class TestPaperAnchors:
    """Every figure-level number the paper states, within tolerance."""

    def test_price_at_cost_5(self, market):
        assert market.equilibrium().price == pytest.approx(25.0, abs=0.5)

    def test_price_at_cost_9(self, market):
        eq = market.with_unit_cost(9.0).equilibrium()
        assert eq.price == pytest.approx(34.0, abs=0.1)

    def test_bandwidth_at_cost_6(self, market):
        eq = market.with_unit_cost(6.0).equilibrium()
        total = market.to_market_units(eq.total_bandwidth)
        assert total == pytest.approx(27.9, abs=0.5)

    def test_bandwidth_at_cost_8(self, market):
        eq = market.with_unit_cost(8.0).equilibrium()
        total = market.to_market_units(eq.total_bandwidth)
        assert total == pytest.approx(23.4, abs=0.2)

    def test_msp_utility_two_vmus(self, market):
        eq = market.with_vmus(uniform_population(2)).equilibrium()
        assert eq.msp_utility == pytest.approx(7.03, abs=0.02)

    def test_msp_utility_six_vmus(self, market):
        eq = market.with_vmus(uniform_population(6)).equilibrium()
        assert eq.msp_utility == pytest.approx(20.35, abs=0.1)

    def test_price_flat_then_rising_in_n(self, market):
        prices = [
            market.with_vmus(uniform_population(n)).equilibrium().price
            for n in range(1, 7)
        ]
        # Flat while capacity is slack (N <= 3), then strictly rising.
        assert prices[0] == pytest.approx(prices[2], rel=1e-6)
        assert prices[3] > prices[2]
        assert prices[5] > prices[4] > prices[3]

    def test_avg_bandwidth_flat_then_falling_in_n(self, market):
        avg = []
        for n in range(1, 7):
            m = market.with_vmus(uniform_population(n))
            eq = m.equilibrium()
            avg.append(m.to_market_units(eq.total_bandwidth) / n)
        assert avg[0] == pytest.approx(avg[2], rel=1e-6)
        assert avg[5] < avg[4] < avg[3] < avg[2]

    def test_avg_vmu_utility_decreases_with_competition(self, market):
        values = []
        for n in (2, 6):
            eq = market.with_vmus(uniform_population(n)).equilibrium()
            values.append(eq.total_vmu_utility / n)
        assert values[1] < values[0]  # paper reports a 12.8% drop

    def test_utilities_decrease_with_cost(self, market):
        msp, vmu = [], []
        for cost in (5.0, 7.0, 9.0):
            eq = market.with_unit_cost(cost).equilibrium()
            msp.append(eq.msp_utility)
            vmu.append(eq.total_vmu_utility)
        assert msp[0] > msp[1] > msp[2]
        assert vmu[0] > vmu[1] > vmu[2]

    def test_price_increases_with_cost(self, market):
        prices = [
            market.with_unit_cost(c).equilibrium().price for c in (5.0, 6.0, 7.0, 8.0, 9.0)
        ]
        assert all(a < b for a, b in zip(prices, prices[1:]))


class TestConstraints:
    def test_capacity_binding_flag(self, market):
        constrained = market.with_vmus(uniform_population(6))
        assert constrained.equilibrium().capacity_binding
        assert not market.equilibrium().capacity_binding

    def test_capacity_never_exceeded(self, market):
        crowded = market.with_vmus(uniform_population(6))
        for price in np.linspace(5.0, 50.0, 50):
            outcome = crowded.round_outcome(float(price))
            total = crowded.to_market_units(outcome.total_allocated)
            assert total <= crowded.config.max_bandwidth * (1.0 + 1e-9)

    def test_price_cap_binding(self):
        # Tiny capacity forces the price to the cap.
        config = MarketConfig(max_bandwidth=5.0)
        market = StackelbergMarket(paper_fig2_population(), config=config)
        eq = market.equilibrium()
        assert eq.price == pytest.approx(50.0)
        assert eq.price_cap_binding

    def test_enforce_capacity_false_ignores_bmax(self):
        config = MarketConfig(max_bandwidth=5.0, enforce_capacity=False)
        market = StackelbergMarket(paper_fig2_population(), config=config)
        eq = market.equilibrium()
        assert eq.price == pytest.approx(
            market.unconstrained_equilibrium_price(), rel=1e-6
        )

    def test_infeasible_market_raises(self):
        # Drop-out threshold below cost for every VMU: α SE / D < C.
        vmus = [VmuProfile("v", data_size_mb=30000.0, immersion_coef=5.0)]
        market = StackelbergMarket(vmus, config=MarketConfig(unit_cost=45.0))
        with pytest.raises(InfeasibleMarketError):
            market.equilibrium()

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigurationError):
            StackelbergMarket([])

    def test_invalid_price_rejected(self, market):
        with pytest.raises(ConfigurationError):
            market.round_outcome(0.0)
        with pytest.raises(ConfigurationError):
            market.round_outcome(float("nan"))

    def test_cost_above_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            MarketConfig(unit_cost=60.0, max_price=50.0)


class TestOutcomeConsistency:
    def test_msp_utility_is_margin_times_allocation(self, market):
        outcome = market.round_outcome(20.0)
        assert outcome.msp_utility == pytest.approx(
            (20.0 - 5.0) * outcome.allocations.sum()
        )

    def test_allocations_equal_demands_when_slack(self, market):
        outcome = market.round_outcome(30.0)
        np.testing.assert_allclose(outcome.allocations, outcome.demands)

    def test_vmu_utilities_at_equilibrium_positive(self, market):
        eq = market.equilibrium()
        assert (eq.vmu_utilities > 0.0).all()

    def test_to_market_units(self, market):
        assert market.to_market_units(0.5) == pytest.approx(50.0)

    def test_accessors(self, market):
        assert market.num_vmus == 2
        assert len(market.vmus) == 2
        np.testing.assert_allclose(market.immersion_coefs, [5.0, 5.0])
        np.testing.assert_allclose(market.data_units, [2.0, 1.0])

    def test_with_unit_cost_does_not_mutate(self, market):
        market.with_unit_cost(9.0)
        assert market.config.unit_cost == 5.0

    def test_with_vmus_does_not_mutate(self, market):
        market.with_vmus(uniform_population(4))
        assert market.num_vmus == 2
