"""End-to-end queue smoke: real worker processes, a real SIGKILL.

The in-process tests (``test_queue.py``) cover the lease/reap mechanics on
fake time; this file is the acceptance drill for the whole subsystem with
nothing faked: a small fig3 plan is enqueued into a shared directory, two
``repro.experiments.run worker`` subprocesses serve it, one is SIGKILLed
mid-job, and the survivor — reaping the dead worker's stale lease after
the TTL — completes the batch. The assembled figure is then served
entirely from the artifact store and must be bitwise-equal to the direct
sequential run, and a stored DRL artifact must replay from its embedded
spec alone.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.experiments import run_experiment
from repro.experiments.api import get_experiment
from repro.experiments.scheduler import Job
from repro.queue import JobQueue, QueueScheduler

LEASE_TTL = 2.0
DEADLINE = 90.0  # generous; the whole drill normally takes a few seconds

PARAMS = {
    "preset": "smoke",
    "costs": (5.0, 7.0),
    "schemes": ("drl", "equilibrium"),
}


@pytest.fixture(autouse=True)
def _watchdog():
    if not hasattr(signal, "SIGALRM"):  # non-POSIX fallback: no guard
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"queue smoke exceeded the {DEADLINE + 30.0}s watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, DEADLINE + 30.0)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _plan_jobs():
    spec = get_experiment("fig3_cost")
    plan = spec.plan(spec.validate(PARAMS))
    return [Job.from_spec(entry) for entry in plan.job_specs()]


def _spawn_worker(queue_dir: Path, worker_id: str, *extra: str):
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH")) if part
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.run", "worker",
            "--queue-dir", str(queue_dir),
            "--ttl", str(LEASE_TTL),
            "--worker-id", worker_id,
            "--poll", "0.05",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_for_lease(queue: JobQueue, worker_id: str, timeout: float):
    """The hashes ``worker_id`` holds once it first leases (or [])."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        held = queue.leased_hashes().get(worker_id, [])
        if held:
            return held
        if not queue.pending_hashes() and not any(
            queue.leased_hashes().values()
        ):
            return []  # batch finished before the victim leased anything
        time.sleep(0.001)
    return []


def test_sigkilled_worker_resumes_on_survivor(tmp_path):
    queue_dir = tmp_path / "queue"
    jobs = _plan_jobs()
    queue = JobQueue(queue_dir, lease_ttl=LEASE_TTL)
    assert queue.enqueue_many(jobs) == len(jobs)

    # Victim first, alone, so it is guaranteed to be the one mid-job.
    victim = _spawn_worker(queue_dir, "victim")
    try:
        held_at_kill = _wait_for_lease(queue, "victim", timeout=30.0)
        victim.kill()  # SIGKILL: no cleanup, no heartbeat thread survives
        victim.wait(timeout=30.0)
    finally:
        if victim.poll() is None:  # pragma: no cover - watchdog path
            victim.kill()
    assert held_at_kill, "victim never leased a job — nothing was tested"
    # The kill landed mid-job: the lease file is orphaned on disk.
    assert queue.leased_hashes().get("victim") == held_at_kill

    survivor = _spawn_worker(queue_dir, "survivor", "--drain")
    try:
        stdout, _ = survivor.communicate(timeout=DEADLINE)
    finally:
        if survivor.poll() is None:  # pragma: no cover - watchdog path
            survivor.kill()
    assert survivor.returncode == 0, stdout

    # The survivor reaped the victim's stale lease and completed it.
    assert queue.outstanding() == []
    assert queue.leased_hashes().get("victim", []) == []
    assert sorted(queue.store.hashes()) == sorted(
        job.job_hash() for job in jobs
    )
    for job_hash in held_at_kill:
        assert queue.store.contains(job_hash)

    # Bitwise acceptance: assembling from the store equals the direct run.
    direct = run_experiment("fig3_cost", PARAMS)
    scheduler = QueueScheduler(queue_dir, poll_interval=0.01)
    queued = run_experiment("fig3_cost", PARAMS, scheduler=scheduler)
    assert scheduler.cache_hits == len(jobs)
    assert scheduler.jobs_executed == 0
    for cost in PARAMS["costs"]:
        for scheme in PARAMS["schemes"]:
            assert vars(queued.evaluations[cost][scheme]) == vars(
                direct.evaluations[cost][scheme]
            )

    # Provenance acceptance: a stored DRL artifact replays bitwise from
    # its embedded spec, and its checkpoint sidecar resolved.
    drl_artifacts = [
        artifact
        for artifact in queue.store
        if artifact.checkpoint() is not None
    ]
    assert drl_artifacts, "expected at least one checkpoint-bearing artifact"
    artifact = drl_artifacts[0]
    assert artifact.checkpoint().exists()
    assert artifact.replay() == artifact.result
