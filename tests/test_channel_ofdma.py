"""OFDMA pool tests: orthogonality invariants and rationing properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.ofdma import OfdmaPool, proportional_rationing
from repro.errors import AllocationError, ConfigurationError


class TestOfdmaPool:
    def test_subchannel_width(self):
        pool = OfdmaPool(total_bandwidth=50.0, num_subchannels=100)
        assert pool.subchannel_width == 0.5

    def test_allocate_grants_at_least_request(self):
        pool = OfdmaPool(50.0, 100)
        granted = pool.allocate("vmu-0", 1.2)
        assert sum(s.width for s in granted) >= 1.2
        assert pool.allocated_bandwidth("vmu-0") == pytest.approx(1.5)

    def test_allocate_exact_multiple(self):
        pool = OfdmaPool(50.0, 100)
        pool.allocate("vmu-0", 2.0)
        assert pool.allocated_bandwidth("vmu-0") == pytest.approx(2.0)

    def test_free_bandwidth_decreases(self):
        pool = OfdmaPool(50.0, 100)
        pool.allocate("a", 10.0)
        assert pool.free_bandwidth == pytest.approx(40.0)

    def test_over_allocation_rejected(self):
        pool = OfdmaPool(10.0, 10)
        pool.allocate("a", 9.5)
        with pytest.raises(AllocationError):
            pool.allocate("b", 1.0)

    def test_release_returns_width(self):
        pool = OfdmaPool(50.0, 100)
        pool.allocate("a", 5.0)
        freed = pool.release("a")
        assert freed == pytest.approx(5.0)
        assert pool.free_bandwidth == pytest.approx(50.0)

    def test_release_unknown_owner_is_noop(self):
        pool = OfdmaPool(50.0, 100)
        assert pool.release("ghost") == 0.0

    def test_orthogonality_maintained(self):
        pool = OfdmaPool(50.0, 100)
        pool.allocate("a", 7.3)
        pool.allocate("b", 12.9)
        pool.release("a")
        pool.allocate("c", 3.1)
        assert pool.is_orthogonal()

    def test_allocation_of_lists_subchannels(self):
        pool = OfdmaPool(10.0, 10)
        pool.allocate("a", 2.0)
        subs = pool.allocation_of("a")
        assert len(subs) == 2
        assert all(s.width == 1.0 for s in subs)

    def test_no_subchannel_double_owned(self):
        pool = OfdmaPool(10.0, 10)
        a = {s.index for s in pool.allocate("a", 4.0)}
        b = {s.index for s in pool.allocate("b", 4.0)}
        assert not a & b

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            OfdmaPool(0.0, 10)
        with pytest.raises(ConfigurationError):
            OfdmaPool(10.0, 0)

    def test_zero_request_rejected(self):
        pool = OfdmaPool(10.0, 10)
        with pytest.raises(ConfigurationError):
            pool.allocate("a", 0.0)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=8)
    )
    def test_sequential_allocations_stay_orthogonal(self, requests):
        pool = OfdmaPool(100.0, 200)
        for i, request in enumerate(requests):
            pool.allocate(f"vmu-{i}", request)
        assert pool.is_orthogonal()
        total = sum(pool.allocated_bandwidth(f"vmu-{i}") for i in range(len(requests)))
        assert total == pytest.approx(100.0 - pool.free_bandwidth)


class TestProportionalRationing:
    def test_within_capacity_unchanged(self):
        assert proportional_rationing([1.0, 2.0], 10.0) == [1.0, 2.0]

    def test_scales_to_capacity(self):
        granted = proportional_rationing([6.0, 2.0], 4.0)
        assert sum(granted) == pytest.approx(4.0)
        assert granted[0] / granted[1] == pytest.approx(3.0)

    def test_zero_demands(self):
        assert proportional_rationing([0.0, 0.0], 5.0) == [0.0, 0.0]

    def test_negative_demand_rejected(self):
        with pytest.raises(AllocationError):
            proportional_rationing([-1.0, 2.0], 5.0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            proportional_rationing([1.0], 0.0)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=10),
        st.floats(min_value=0.1, max_value=50.0),
    )
    def test_properties(self, demands, capacity):
        granted = proportional_rationing(demands, capacity)
        # never exceeds capacity (up to float noise)
        assert sum(granted) <= capacity * (1.0 + 1e-9) or sum(demands) <= capacity
        # never grants more than demanded
        for d, g in zip(demands, granted):
            assert g <= d * (1.0 + 1e-12)
        # preserves ratios
        for (d1, g1) in zip(demands, granted):
            for (d2, g2) in zip(demands, granted):
                if d1 > 0 and d2 > 0:
                    assert g1 * d2 == pytest.approx(g2 * d1, rel=1e-9)
