"""Multi-MSP oligopoly tests: Bertrand undercutting and capacity effects."""

import numpy as np
import pytest

from repro.core.multimsp import MspSpec, MultiMspMarket
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.errors import ConfigurationError


def duopoly(capacity=10.0, cost=5.0) -> MultiMspMarket:
    return MultiMspMarket(
        paper_fig2_population(),
        [
            MspSpec("msp-a", unit_cost=cost, capacity=capacity),
            MspSpec("msp-b", unit_cost=cost, capacity=capacity),
        ],
    )


class TestOutcome:
    def test_cheapest_wins_all_demand(self):
        market = duopoly()
        outcome = market.outcome([20.0, 30.0])
        assert outcome.msp_sales[0] > 0.0
        assert outcome.msp_sales[1] == 0.0

    def test_tie_splits_demand(self):
        market = duopoly()
        outcome = market.outcome([20.0, 20.0])
        assert outcome.msp_sales[0] == pytest.approx(outcome.msp_sales[1])

    def test_demand_matches_monopoly_at_same_price(self):
        market = duopoly(capacity=10.0)
        mono = StackelbergMarket(
            paper_fig2_population(),
            config=MarketConfig(enforce_capacity=False),
        )
        outcome = market.outcome([20.0, 25.0])
        np.testing.assert_allclose(
            outcome.vmu_allocations, mono.best_response(20.0)
        )

    def test_capacity_rationing_per_msp(self):
        tight = duopoly(capacity=0.05)
        outcome = tight.outcome([10.0, 10.0])
        assert outcome.msp_sales[0] <= 0.05 + 1e-12
        assert outcome.msp_sales[1] <= 0.05 + 1e-12

    def test_price_vector_validated(self):
        market = duopoly()
        with pytest.raises(ConfigurationError):
            market.outcome([20.0])
        with pytest.raises(ConfigurationError):
            market.outcome([20.0, -1.0])

    def test_utilities_are_margin_times_sales(self):
        market = duopoly()
        outcome = market.outcome([20.0, 30.0])
        assert outcome.msp_utilities[0] == pytest.approx(
            (20.0 - 5.0) * outcome.msp_sales[0]
        )
        assert outcome.msp_utilities[1] == 0.0


class TestBertrandCompetition:
    def test_duopoly_prices_driven_toward_cost(self):
        """Unconstrained identical duopoly: undercutting pushes prices
        near marginal cost — competition destroys the monopoly margin."""
        market = duopoly(capacity=10.0, cost=5.0)
        eq = market.equilibrium(initial_prices=[25.0, 30.0])
        monopoly_price = StackelbergMarket(
            paper_fig2_population()
        ).equilibrium().price
        assert max(eq.prices) < monopoly_price
        assert max(eq.prices) < 5.0 * 1.6  # within 60% of cost

    def test_monopoly_special_case_matches_stackelberg(self):
        """One MSP in the oligopoly model == the paper's monopoly."""
        single = MultiMspMarket(
            paper_fig2_population(),
            [MspSpec("only", unit_cost=5.0, capacity=0.5)],
        )
        eq = single.equilibrium()
        reference = StackelbergMarket(paper_fig2_population()).equilibrium()
        assert eq.converged
        assert eq.prices[0] == pytest.approx(reference.price, rel=0.01)
        assert eq.msp_utilities[0] == pytest.approx(
            reference.msp_utility, rel=0.01
        )

    def test_competition_raises_vmu_welfare(self):
        """VMUs are better off under duopoly than monopoly (lower price)."""
        market = duopoly(capacity=10.0)
        eq = market.equilibrium(initial_prices=[25.0, 30.0])
        duopoly_price = float(eq.prices.min())
        monopoly_price = StackelbergMarket(
            paper_fig2_population()
        ).equilibrium().price
        assert duopoly_price < monopoly_price

    def test_asymmetric_costs_low_cost_wins(self):
        market = MultiMspMarket(
            paper_fig2_population(),
            [
                MspSpec("cheap", unit_cost=5.0, capacity=10.0),
                MspSpec("dear", unit_cost=12.0, capacity=10.0),
            ],
        )
        eq = market.equilibrium(initial_prices=[20.0, 20.0])
        outcome = market.outcome(eq.prices.tolist())
        # The low-cost provider captures the market.
        assert outcome.msp_sales[0] > 0.0
        assert outcome.msp_sales[1] == pytest.approx(0.0, abs=1e-9)

    def test_nonconvergence_reported_not_raised(self):
        # One iteration cannot reach a fixed point from a bad start.
        market = duopoly()
        eq = market.equilibrium(initial_prices=[50.0, 6.0], max_iterations=1)
        assert not eq.converged
        assert eq.iterations == 1


class TestValidation:
    def test_duplicate_msp_ids(self):
        with pytest.raises(ConfigurationError):
            MultiMspMarket(
                paper_fig2_population(),
                [
                    MspSpec("x", unit_cost=5.0, capacity=1.0),
                    MspSpec("x", unit_cost=6.0, capacity=1.0),
                ],
            )

    def test_empty_inputs(self):
        with pytest.raises(ConfigurationError):
            MultiMspMarket([], [MspSpec("x", unit_cost=5.0, capacity=1.0)])
        with pytest.raises(ConfigurationError):
            MultiMspMarket(paper_fig2_population(), [])

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            MspSpec("x", unit_cost=0.0, capacity=1.0)
        with pytest.raises(ConfigurationError):
            MspSpec("x", unit_cost=5.0, capacity=0.0)
