"""Multi-MSP oligopoly tests: Bertrand undercutting and capacity effects."""

import numpy as np
import pytest

from repro.core.multimsp import (
    MspSpec,
    MultiMspMarket,
    OligopolyEquilibrium,
    oligopoly_equilibria_batch,
    oligopoly_from_market,
)
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.errors import ConfigurationError, GameError


def duopoly(capacity=10.0, cost=5.0) -> MultiMspMarket:
    return MultiMspMarket(
        paper_fig2_population(),
        [
            MspSpec("msp-a", unit_cost=cost, capacity=capacity),
            MspSpec("msp-b", unit_cost=cost, capacity=capacity),
        ],
    )


class TestOutcome:
    def test_cheapest_wins_all_demand(self):
        market = duopoly()
        outcome = market.outcome([20.0, 30.0])
        assert outcome.msp_sales[0] > 0.0
        assert outcome.msp_sales[1] == 0.0

    def test_tie_splits_demand(self):
        market = duopoly()
        outcome = market.outcome([20.0, 20.0])
        assert outcome.msp_sales[0] == pytest.approx(outcome.msp_sales[1])

    def test_demand_matches_monopoly_at_same_price(self):
        market = duopoly(capacity=10.0)
        mono = StackelbergMarket(
            paper_fig2_population(),
            config=MarketConfig(enforce_capacity=False),
        )
        outcome = market.outcome([20.0, 25.0])
        np.testing.assert_allclose(
            outcome.vmu_allocations, mono.best_response(20.0)
        )

    def test_capacity_rationing_per_msp(self):
        tight = duopoly(capacity=0.05)
        outcome = tight.outcome([10.0, 10.0])
        assert outcome.msp_sales[0] <= 0.05 + 1e-12
        assert outcome.msp_sales[1] <= 0.05 + 1e-12

    def test_price_vector_validated(self):
        market = duopoly()
        with pytest.raises(ConfigurationError):
            market.outcome([20.0])
        with pytest.raises(ConfigurationError):
            market.outcome([20.0, -1.0])

    def test_utilities_are_margin_times_sales(self):
        market = duopoly()
        outcome = market.outcome([20.0, 30.0])
        assert outcome.msp_utilities[0] == pytest.approx(
            (20.0 - 5.0) * outcome.msp_sales[0]
        )
        assert outcome.msp_utilities[1] == 0.0


class TestBertrandCompetition:
    def test_duopoly_prices_driven_toward_cost(self):
        """Unconstrained identical duopoly: undercutting pushes prices
        near marginal cost — competition destroys the monopoly margin."""
        market = duopoly(capacity=10.0, cost=5.0)
        eq = market.equilibrium(initial_prices=[25.0, 30.0])
        monopoly_price = StackelbergMarket(
            paper_fig2_population()
        ).equilibrium().price
        assert max(eq.prices) < monopoly_price
        assert max(eq.prices) < 5.0 * 1.6  # within 60% of cost

    def test_monopoly_special_case_matches_stackelberg(self):
        """One MSP in the oligopoly model == the paper's monopoly."""
        single = MultiMspMarket(
            paper_fig2_population(),
            [MspSpec("only", unit_cost=5.0, capacity=0.5)],
        )
        eq = single.equilibrium()
        reference = StackelbergMarket(paper_fig2_population()).equilibrium()
        assert eq.converged
        assert eq.prices[0] == pytest.approx(reference.price, rel=0.01)
        assert eq.msp_utilities[0] == pytest.approx(
            reference.msp_utility, rel=0.01
        )

    def test_competition_raises_vmu_welfare(self):
        """VMUs are better off under duopoly than monopoly (lower price)."""
        market = duopoly(capacity=10.0)
        eq = market.equilibrium(initial_prices=[25.0, 30.0])
        duopoly_price = float(eq.prices.min())
        monopoly_price = StackelbergMarket(
            paper_fig2_population()
        ).equilibrium().price
        assert duopoly_price < monopoly_price

    def test_asymmetric_costs_low_cost_wins(self):
        market = MultiMspMarket(
            paper_fig2_population(),
            [
                MspSpec("cheap", unit_cost=5.0, capacity=10.0),
                MspSpec("dear", unit_cost=12.0, capacity=10.0),
            ],
        )
        eq = market.equilibrium(initial_prices=[20.0, 20.0])
        outcome = market.outcome(eq.prices.tolist())
        # The low-cost provider captures the market.
        assert outcome.msp_sales[0] > 0.0
        assert outcome.msp_sales[1] == pytest.approx(0.0, abs=1e-9)

    def test_nonconvergence_reported_not_raised(self):
        # One iteration cannot reach a fixed point from a bad start.
        market = duopoly()
        eq = market.equilibrium(initial_prices=[50.0, 6.0], max_iterations=1)
        assert not eq.converged
        assert eq.iterations == 1


class TestValidation:
    def test_duplicate_msp_ids(self):
        with pytest.raises(ConfigurationError):
            MultiMspMarket(
                paper_fig2_population(),
                [
                    MspSpec("x", unit_cost=5.0, capacity=1.0),
                    MspSpec("x", unit_cost=6.0, capacity=1.0),
                ],
            )

    def test_empty_inputs(self):
        with pytest.raises(ConfigurationError):
            MultiMspMarket([], [MspSpec("x", unit_cost=5.0, capacity=1.0)])
        with pytest.raises(ConfigurationError):
            MultiMspMarket(paper_fig2_population(), [])

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            MspSpec("x", unit_cost=0.0, capacity=1.0)
        with pytest.raises(ConfigurationError):
            MspSpec("x", unit_cost=5.0, capacity=0.0)


class TestPriceLattice:
    def test_inclusive_endpoints_small(self):
        """cost 5.0, tick 0.5, cap 6.0 — both endpoints on the lattice."""
        market = MultiMspMarket(
            paper_fig2_population(),
            [MspSpec("a", unit_cost=5.0, capacity=1.0)],
            max_price=6.0,
            price_tick=0.5,
        )
        np.testing.assert_array_equal(
            market._price_lattice(5.0), [5.0, 5.5, 6.0]
        )

    def test_default_lattice_exact(self):
        market = duopoly()
        lattice = market._price_lattice(5.0)
        assert lattice[0] == 5.0
        assert lattice[-1] == 50.0  # inclusive endpoint, never beyond
        assert lattice.size == 901
        assert np.all(np.diff(lattice) > 0)
        assert np.all(lattice <= market.max_price)

    def test_cost_above_cap_is_empty(self):
        market = duopoly()
        assert market._price_lattice(60.0).size == 0

    def test_cap_not_on_tick_grid(self):
        """Cap between ticks: stop at the last lattice point below it."""
        market = MultiMspMarket(
            paper_fig2_population(),
            [MspSpec("a", unit_cost=5.0, capacity=1.0)],
            max_price=6.2,
            price_tick=0.5,
        )
        np.testing.assert_array_equal(
            market._price_lattice(5.0), [5.0, 5.5, 6.0]
        )


def random_oligopoly(rng) -> MultiMspMarket:
    num_msps = int(rng.integers(2, 4))
    specs = [
        MspSpec(
            f"msp-{i}",
            unit_cost=float(rng.uniform(3.0, 12.0)),
            capacity=float(rng.uniform(0.05, 2.0)),
        )
        for i in range(num_msps)
    ]
    return MultiMspMarket(paper_fig2_population(), specs, price_tick=0.5)


class TestBatchedBestResponse:
    def test_batched_matches_scalar_bitwise_property(self):
        """Randomised duopolies/triopolies: the lattice-batched best
        response returns the same bits as the per-point scalar sweep."""
        rng = np.random.default_rng(1234)
        for _ in range(12):
            market = random_oligopoly(rng)
            prices = rng.uniform(5.0, 45.0, size=market.num_msps)
            prices = np.minimum(prices, market.max_price)
            for index in range(market.num_msps):
                batched = market._best_response_price(index, prices.copy())
                scalar = market._best_response_price_scalar(index, prices.copy())
                assert batched == scalar

    def test_equilibrium_batched_matches_scalar_bitwise(self):
        rng = np.random.default_rng(7)
        for _ in range(4):
            market = random_oligopoly(rng)
            initial = rng.uniform(8.0, 40.0, size=market.num_msps).tolist()
            fast = market.equilibrium(
                initial_prices=initial, max_iterations=60, record_trace=True
            )
            slow = market.equilibrium(
                initial_prices=initial,
                max_iterations=60,
                batched=False,
                record_trace=True,
            )
            np.testing.assert_array_equal(fast.prices, slow.prices)
            np.testing.assert_array_equal(fast.msp_utilities, slow.msp_utilities)
            assert fast.converged == slow.converged
            assert fast.iterations == slow.iterations
            assert fast.residual == slow.residual
            np.testing.assert_array_equal(
                fast.trace.profiles, slow.trace.profiles
            )


class _ForcedCycleMarket(MultiMspMarket):
    """Deterministic 2-cycle best response — exercises the Edgeworth
    cycle detector without needing an economic cycling instance (the
    winner-take-all demand model has no residual demand, so real
    undercutting dynamics are monotone)."""

    _CYCLE = {10.0: 12.0, 12.0: 10.0}

    def _best_response_price(self, msp_index, prices):
        return self._CYCLE.get(float(prices[msp_index]), 10.0)


class TestEquilibriumDiagnostics:
    def cycling_market(self) -> MultiMspMarket:
        return _ForcedCycleMarket(
            paper_fig2_population(),
            [
                MspSpec("a", unit_cost=5.0, capacity=1.0),
                MspSpec("b", unit_cost=5.0, capacity=1.0),
            ],
        )

    def test_cycle_detected_and_bounded(self):
        eq = self.cycling_market().equilibrium(
            initial_prices=[10.0, 10.0], tolerance=1e-9
        )
        assert not eq.converged
        assert eq.cycle_length == 2
        assert eq.cycle_low == 10.0
        assert eq.cycle_high == 12.0
        assert eq.iterations < 10  # detection stops the solve immediately

    def test_damping_stabilises_forced_cycle(self):
        """Damped updates leave the lattice and spiral into the cycle
        interval instead of revisiting profiles exactly."""
        eq = self.cycling_market().equilibrium(
            initial_prices=[10.0, 10.0], damping=0.5, tolerance=1e-6
        )
        assert eq.cycle_length == 0
        assert 10.0 <= eq.prices.min() and eq.prices.max() <= 12.0

    def test_damping_validation(self):
        market = duopoly()
        with pytest.raises(GameError):
            market.equilibrium(damping=0.0)
        with pytest.raises(ConfigurationError):
            market.equilibrium(damping=1.5)
        with pytest.raises(GameError):
            market.equilibrium(max_iterations=0)

    def test_trace_shapes(self):
        market = duopoly()
        eq = market.equilibrium(initial_prices=[25.0, 30.0], max_iterations=50)
        assert eq.trace is not None
        assert eq.trace.profiles.shape == (eq.iterations + 1, 2)
        assert eq.trace.residuals.shape == (eq.iterations,)
        np.testing.assert_array_equal(eq.trace.profiles[0], [25.0, 30.0])
        np.testing.assert_array_equal(eq.trace.profiles[-1], eq.prices)
        assert eq.trace.residuals[-1] == eq.residual

    def test_trace_opt_out(self):
        eq = duopoly().equilibrium(max_iterations=5, record_trace=False)
        assert eq.trace is None

    def test_outcome_social_welfare(self):
        market = duopoly()
        outcome = market.outcome([20.0, 25.0])
        assert outcome.social_welfare == float(
            outcome.msp_utilities.sum() + outcome.vmu_utilities.sum()
        )
        assert outcome.vmu_utilities.shape == (len(market.vmus),)


class TestOligopolyBatch:
    def games(self):
        rng = np.random.default_rng(42)
        return [random_oligopoly(rng) for _ in range(5)]

    def test_batch_matches_sequential_bitwise(self):
        games = self.games()
        batched = oligopoly_equilibria_batch(
            games, max_iterations=60, record_trace=True
        )
        for game, eq in zip(games, batched):
            reference = game.equilibrium(max_iterations=60, record_trace=True)
            np.testing.assert_array_equal(eq.prices, reference.prices)
            np.testing.assert_array_equal(
                eq.msp_utilities, reference.msp_utilities
            )
            assert eq.converged == reference.converged
            assert eq.iterations == reference.iterations
            assert eq.residual == reference.residual
            assert eq.cycle_length == reference.cycle_length
            np.testing.assert_array_equal(
                eq.trace.profiles, reference.trace.profiles
            )
            np.testing.assert_array_equal(
                eq.trace.residuals, reference.trace.residuals
            )

    def test_batch_budget_matches_sequential(self):
        """Games that exhaust the budget freeze at the same profile the
        sequential solver reports (no extra hidden sweep)."""
        games = self.games()
        batched = oligopoly_equilibria_batch(
            games, max_iterations=2, record_trace=False
        )
        for game, eq in zip(games, batched):
            reference = game.equilibrium(max_iterations=2, record_trace=False)
            np.testing.assert_array_equal(eq.prices, reference.prices)
            assert eq.iterations == reference.iterations
            assert eq.converged == reference.converged

    def test_empty_batch(self):
        assert oligopoly_equilibria_batch([]) == []


class TestOligopolyFromMarket:
    def test_split_capacity_preserves_industry_capacity(self):
        base = StackelbergMarket(paper_fig2_population())
        game = oligopoly_from_market(base, 4)
        total = sum(spec.capacity for spec in game.msps)
        assert total == pytest.approx(base.config.capacity_natural)
        assert game.num_msps == 4
        assert game.max_price == base.config.max_price

    def test_replicated_capacity(self):
        base = StackelbergMarket(paper_fig2_population())
        game = oligopoly_from_market(base, 3, split_capacity=False)
        for spec in game.msps:
            assert spec.capacity == base.config.capacity_natural

    def test_monopoly_cell_matches_stackelberg_price_region(self):
        base = StackelbergMarket(paper_fig2_population())
        game = oligopoly_from_market(base, 1, price_tick=0.05)
        eq = game.equilibrium()
        reference = base.equilibrium()
        assert eq.converged
        assert eq.prices[0] == pytest.approx(reference.price, abs=0.1)


class TestEquilibriumPayloadRoundTrip:
    def test_bitwise_round_trip_through_json(self):
        import json

        from repro.experiments.api import result_from_payload, result_to_payload

        eq = duopoly().equilibrium(initial_prices=[25.0, 30.0], max_iterations=60)
        payload = json.loads(json.dumps(result_to_payload(eq)))
        back = result_from_payload(OligopolyEquilibrium, payload)
        np.testing.assert_array_equal(back.prices, eq.prices)
        np.testing.assert_array_equal(back.msp_utilities, eq.msp_utilities)
        assert back.converged == eq.converged
        assert back.iterations == eq.iterations
        assert back.residual == eq.residual
        assert back.cycle_length == eq.cycle_length
        np.testing.assert_array_equal(back.trace.profiles, eq.trace.profiles)
        np.testing.assert_array_equal(back.trace.residuals, eq.trace.residuals)

    def test_traceless_round_trip(self):
        import json

        from repro.experiments.api import result_from_payload, result_to_payload

        eq = duopoly().equilibrium(max_iterations=5, record_trace=False)
        payload = json.loads(json.dumps(result_to_payload(eq)))
        back = result_from_payload(OligopolyEquilibrium, payload)
        assert back.trace is None
        np.testing.assert_array_equal(back.prices, eq.prices)
