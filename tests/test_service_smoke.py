"""Latency smoke: the live service under a sustained query/update mix.

CI runs this file as its own timeout-guarded step: ≥ 1 000 queries with
≥ 100 interleaved updates over a small stack must finish with a sane p99
(micro-window batching keeps the per-query cost at a cached-row read —
only the first query after an update burst pays a dirty-row solve), and
the final live state must be bitwise-equal to a cold solve.
"""

import numpy as np
from test_core_equilibria_stacked import random_markets
from test_core_marketstack_live import assert_bitwise_equal

from repro.core import MarketStack
from repro.entities.vmu import VmuProfile
from repro.service import FadingDrift, LivePricingService, Query, VmuJoin

P99_BUDGET_MS = 250.0
"""Generous CI budget: the dirty-row solves of a 32-market stack are
single-digit milliseconds on any hardware; a p99 near this bound means
the incremental path degraded to cold full solves."""


def test_sustained_load_meets_latency_budget():
    markets = random_markets(32, root_seed=101, max_vmus=6)
    service = LivePricingService(markets)
    rng = np.random.default_rng(2026)

    events = []
    updates = 0
    for window in range(125):  # 125 windows × 1 update × 8 queries
        target = int(rng.integers(32))
        if window % 3 == 0:
            events.append(
                VmuJoin(
                    target,
                    VmuProfile(
                        f"smoke-{window}",
                        data_size_mb=float(rng.uniform(50.0, 400.0)),
                        immersion_coef=float(rng.uniform(1.0, 9.0)),
                    ),
                )
            )
        else:
            events.append(
                FadingDrift(target, float(rng.uniform(0.2, 2.0)))
            )
        updates += 1
        for index in rng.integers(0, 32, size=8):
            events.append(Query(int(index)))

    quotes = service.serve(events)
    stats = service.stats()

    assert stats.queries == len(quotes) >= 1000
    assert stats.updates == updates >= 100
    # Incremental accounting: one cold solve (absorbing the first update,
    # which precedes any query), then one sub-stack row per update window
    # — nowhere near queries × M.
    assert stats.solves == updates
    assert stats.rows_resolved == 32 + updates - 1
    assert 0.0 < stats.p50_ms <= stats.p99_ms < P99_BUDGET_MS
    assert stats.qps > 0.0

    # The served state never drifted from the cold truth.
    live = service.equilibria()
    cold = MarketStack(list(service.stack.markets)).equilibria_stacked()
    assert_bitwise_equal(live, cold)
