"""Stacked equilibrium solve: must equal per-market ``equilibrium()`` bitwise.

The acceptance criterion of the stacked solver: solving ``M`` heterogeneous
markets' Stackelberg equilibria in one pass — candidate matrix, one stacked
evaluation, lockstep golden refinement — reproduces the per-market
``equilibrium()`` loop **bitwise**, including ragged populations,
``refine=True/False``, and infeasible-market masking.
"""

import numpy as np
import pytest

from repro.baselines import OraclePricing
from repro.core import MarketStack, welfare_report, welfare_reports_stacked
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import VmuProfile, paper_fig2_population, sample_population
from repro.env.vector import VectorMigrationEnv
from repro.errors import InfeasibleMarketError
from repro.game.solvers import (
    golden_section_maximize,
    golden_section_maximize_batch,
    grid_then_golden,
    grid_then_golden_batch,
)


def random_markets(count, *, root_seed=0, max_vmus=11):
    """Heterogeneous markets: random (ragged) populations, costs, caps."""
    rng = np.random.default_rng(root_seed)
    markets = []
    for _ in range(count):
        population = sample_population(
            int(rng.integers(1, max_vmus + 1)),
            seed=int(rng.integers(0, 2**31)),
        )
        config = MarketConfig(
            unit_cost=float(rng.uniform(3.0, 9.0)),
            max_price=float(rng.uniform(30.0, 60.0)),
            max_bandwidth=float(rng.uniform(20.0, 60.0)),
            enforce_capacity=bool(rng.integers(0, 2)),
        )
        markets.append(StackelbergMarket(population, config=config))
    return markets


def dropout_markets():
    """Markets whose drop-out thresholds fall inside [C, p_max] (kinks)."""
    profiles = [
        [(20.0, 100.0), (5.0, 2500.0)],
        [(18.0, 120.0), (6.0, 1800.0), (5.0, 3000.0)],
        [(5.0, 900.0), (5.0, 1100.0)],
        [(12.0, 150.0), (8.0, 700.0), (5.0, 1500.0)],
    ]
    markets = []
    for spec in profiles:
        vmus = [
            VmuProfile(f"v{i}", data_size_mb=d, immersion_coef=a)
            for i, (a, d) in enumerate(spec)
        ]
        markets.append(
            StackelbergMarket(vmus, config=MarketConfig(enforce_capacity=False))
        )
    return markets


def infeasible_market():
    """Every threshold below the unit cost: no profitable trade."""
    vmus = [VmuProfile("v", data_size_mb=30000.0, immersion_coef=5.0)]
    return StackelbergMarket(vmus, config=MarketConfig(unit_cost=45.0))


def assert_equilibria_match(stacked, markets, *, refine):
    for m, market in enumerate(markets):
        reference = market.equilibrium(refine=refine)
        solved = stacked.equilibrium(m)
        assert solved.price == reference.price
        assert solved.msp_utility == reference.msp_utility
        assert (solved.demands == reference.demands).all()
        assert (solved.vmu_utilities == reference.vmu_utilities).all()
        assert solved.capacity_binding == reference.capacity_binding
        assert solved.price_cap_binding == reference.price_cap_binding


class TestStackedEqualsPerMarket:
    @pytest.mark.parametrize("refine", [True, False])
    def test_50_random_ragged_markets_match_bitwise(self, refine):
        """Property: across 50 random heterogeneous markets (ragged N,
        mixed capacity enforcement) the stacked equilibria equal per-market
        ``equilibrium()`` calls bitwise, with and without refinement."""
        markets = random_markets(50, root_seed=11)
        stacked = MarketStack(markets).equilibria_stacked(refine=refine)
        assert stacked.num_markets == 50
        assert stacked.feasible.all()
        assert_equilibria_match(stacked, markets, refine=refine)

    @pytest.mark.parametrize("refine", [True, False])
    def test_dropout_regime_matches_bitwise(self, refine):
        """Markets with thresholds inside [C, p_max]: the kinked candidate
        enumeration stays bitwise-equal across the stack."""
        markets = dropout_markets()
        stacked = MarketStack(markets).equilibria_stacked(refine=refine)
        assert_equilibria_match(stacked, markets, refine=refine)

    def test_single_market_stack_is_equilibrium(self):
        """M = 1 broadcast case: the market's own ``equilibrium()`` is one
        row of the stacked solve (they share one code path)."""
        market = StackelbergMarket(paper_fig2_population())
        solved = MarketStack([market]).equilibria_stacked()
        reference = market.equilibrium()
        assert solved.equilibrium(0).price == reference.price
        assert solved.equilibrium(0).msp_utility == reference.msp_utility

    def test_segment_candidates_cross_check(self):
        """The scalar reference enumeration brackets the same optimum the
        stacked candidate matrix finds."""
        for market in dropout_markets():
            candidates = np.asarray(market._segment_candidates())
            best_reference = float(market.msp_utilities(candidates).max())
            equilibrium = market.equilibrium()
            assert equilibrium.msp_utility == pytest.approx(
                best_reference, rel=1e-9
            )


class TestInfeasibleMasking:
    def test_infeasible_member_is_masked_not_fatal(self):
        markets = random_markets(6, root_seed=3)
        markets.insert(2, infeasible_market())
        stacked = MarketStack(markets).equilibria_stacked()
        assert not stacked.feasible[2]
        assert stacked.feasible.sum() == 6
        assert np.isnan(stacked.prices[2])
        assert np.isnan(stacked.msp_utilities[2])
        assert not stacked.capacity_binding[2]
        with pytest.raises(InfeasibleMarketError, match="no profitable trade"):
            stacked.equilibrium(2)
        with pytest.raises(InfeasibleMarketError):
            markets[2].equilibrium()  # per-market semantics agree

    def test_feasible_members_unaffected_by_masked_one(self):
        feasible = random_markets(5, root_seed=9)
        mixed = feasible[:2] + [infeasible_market()] + feasible[2:]
        solved = MarketStack(mixed).equilibria_stacked()
        assert_equilibria_match(
            MarketStack(feasible).equilibria_stacked(),
            feasible,
            refine=True,
        )
        for m, market in enumerate(mixed):
            if bool(solved.feasible[m]):
                reference = market.equilibrium()
                assert solved.equilibrium(m).price == reference.price

    def test_equilibria_list_has_none_for_masked(self):
        markets = [StackelbergMarket(paper_fig2_population()), infeasible_market()]
        solved = MarketStack(markets).equilibria_stacked()
        listed = solved.equilibria()
        assert listed[0] is not None and listed[1] is None


class TestBatchedSolvers:
    def test_golden_batch_matches_scalar_bitwise(self):
        """Lockstep golden sections equal M independent scalar searches."""
        peaks = np.array([3.0, 7.5, 12.25, 20.0])

        def batched(x):
            return -((np.asarray(x) - peaks) ** 2)

        lows = np.array([1.0, 1.0, 10.0, 19.999999999999])
        highs = np.array([6.0, 30.0, 14.0, 20.000000000001])
        best, values = golden_section_maximize_batch(batched, lows, highs)
        for m in range(peaks.size):
            ref_best, ref_value = golden_section_maximize(
                lambda x, m=m: -((x - peaks[m]) ** 2),
                float(lows[m]),
                float(highs[m]),
            )
            assert best[m] == ref_best
            assert values[m] == ref_value

    def test_grid_then_golden_batch_matches_scalar_bitwise(self):
        peaks = np.array([2.0, 9.0, 4.5])

        def batched(x):
            x = np.asarray(x)
            p = peaks[:, np.newaxis] if x.ndim == 2 else peaks
            return np.sin(x / 3.0) - (x - p) ** 2 / 40.0

        lows = np.array([1.0, 1.0, 4.5])
        highs = np.array([12.0, 10.0, 4.5])
        best, values = grid_then_golden_batch(batched, lows, highs)
        for m in range(peaks.size):
            ref_best, ref_value = grid_then_golden(
                lambda x, m=m: float(np.sin(x / 3.0) - (x - peaks[m]) ** 2 / 40.0),
                float(lows[m]),
                float(highs[m]),
                vector_objective=lambda x, m=m: np.sin(x / 3.0)
                - (x - peaks[m]) ** 2 / 40.0,
            )
            assert best[m] == ref_best
            assert values[m] == ref_value


class TestReroutedCallers:
    def test_oracle_from_stack_equals_per_market(self):
        markets = random_markets(8, root_seed=21)
        stacked_policies = OraclePricing.from_stack(markets)
        for market, policy in zip(markets, stacked_policies):
            assert (
                policy.equilibrium_price
                == OraclePricing(market).equilibrium_price
            )

    def test_welfare_reports_stacked_equal_per_market(self):
        markets = random_markets(6, root_seed=17)
        stacked = welfare_reports_stacked(markets)
        for market, report in zip(markets, stacked):
            reference = welfare_report(market)
            assert report.monopoly_price == reference.monopoly_price
            assert report.monopoly_welfare == reference.monopoly_welfare
            assert report.planner_price == reference.planner_price
            assert report.planner_welfare == reference.planner_welfare
            assert report.deadweight_loss == reference.deadweight_loss

    def test_vector_env_equilibria_one_stacked_solve(self):
        markets = random_markets(5, root_seed=29, max_vmus=4)
        # A fleet needs one observation layout: equalise N.
        populations = [sample_population(3, seed=s) for s in range(5)]
        fleet = [
            StackelbergMarket(pop, config=markets[i].config)
            for i, pop in enumerate(populations)
        ]
        env = VectorMigrationEnv.from_markets(fleet, seed=0)
        solved = env.equilibria()
        for market, equilibrium in zip(fleet, solved):
            assert equilibrium.price == market.equilibrium().price

    def test_vector_env_batched_reset_bit_equal_to_sequential(self):
        populations = [sample_population(3, seed=s) for s in range(4)]
        configs = [
            MarketConfig(unit_cost=float(4.0 + i), max_bandwidth=30.0 + i)
            for i in range(4)
        ]
        fleet = [
            StackelbergMarket(pop, config=config)
            for pop, config in zip(populations, configs)
        ]
        batched = VectorMigrationEnv.from_markets(fleet, seed=123)
        observations = batched.reset()
        sequential = VectorMigrationEnv.from_markets(fleet, seed=123)
        reference = np.stack([env.reset() for env in sequential.envs])
        assert (observations == reference).all()
