"""Stacked equilibrium solve: must equal per-market ``equilibrium()`` bitwise.

The acceptance criterion of the stacked solver: solving ``M`` heterogeneous
markets' Stackelberg equilibria in one pass — candidate matrix, one stacked
evaluation, lockstep golden refinement — reproduces the per-market
``equilibrium()`` loop **bitwise**, including ragged populations,
``refine=True/False``, and infeasible-market masking.
"""

import numpy as np
import pytest

from repro.baselines import OraclePricing
from repro.core import MarketStack, welfare_report, welfare_reports_stacked
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import VmuProfile, paper_fig2_population, sample_population
from repro.env.vector import VectorMigrationEnv
from repro.errors import GameError, InfeasibleMarketError
from repro.game.solvers import (
    golden_section_maximize,
    golden_section_maximize_batch,
    grid_then_golden,
    grid_then_golden_batch,
)


def random_markets(count, *, root_seed=0, max_vmus=11):
    """Heterogeneous markets: random (ragged) populations, costs, caps."""
    rng = np.random.default_rng(root_seed)
    markets = []
    for _ in range(count):
        population = sample_population(
            int(rng.integers(1, max_vmus + 1)),
            seed=int(rng.integers(0, 2**31)),
        )
        config = MarketConfig(
            unit_cost=float(rng.uniform(3.0, 9.0)),
            max_price=float(rng.uniform(30.0, 60.0)),
            max_bandwidth=float(rng.uniform(20.0, 60.0)),
            enforce_capacity=bool(rng.integers(0, 2)),
        )
        markets.append(StackelbergMarket(population, config=config))
    return markets


def dropout_markets():
    """Markets whose drop-out thresholds fall inside [C, p_max] (kinks)."""
    profiles = [
        [(20.0, 100.0), (5.0, 2500.0)],
        [(18.0, 120.0), (6.0, 1800.0), (5.0, 3000.0)],
        [(5.0, 900.0), (5.0, 1100.0)],
        [(12.0, 150.0), (8.0, 700.0), (5.0, 1500.0)],
    ]
    markets = []
    for spec in profiles:
        vmus = [
            VmuProfile(f"v{i}", data_size_mb=d, immersion_coef=a)
            for i, (a, d) in enumerate(spec)
        ]
        markets.append(
            StackelbergMarket(vmus, config=MarketConfig(enforce_capacity=False))
        )
    return markets


def infeasible_market():
    """Every threshold below the unit cost: no profitable trade."""
    vmus = [VmuProfile("v", data_size_mb=30000.0, immersion_coef=5.0)]
    return StackelbergMarket(vmus, config=MarketConfig(unit_cost=45.0))


def assert_equilibria_match(stacked, markets, *, refine):
    for m, market in enumerate(markets):
        reference = market.equilibrium(refine=refine)
        solved = stacked.equilibrium(m)
        assert solved.price == reference.price
        assert solved.msp_utility == reference.msp_utility
        assert (solved.demands == reference.demands).all()
        assert (solved.vmu_utilities == reference.vmu_utilities).all()
        assert solved.capacity_binding == reference.capacity_binding
        assert solved.price_cap_binding == reference.price_cap_binding


class TestStackedEqualsPerMarket:
    @pytest.mark.parametrize("refine", [True, False])
    def test_50_random_ragged_markets_match_bitwise(self, refine):
        """Property: across 50 random heterogeneous markets (ragged N,
        mixed capacity enforcement) the stacked equilibria equal per-market
        ``equilibrium()`` calls bitwise, with and without refinement."""
        markets = random_markets(50, root_seed=11)
        stacked = MarketStack(markets).equilibria_stacked(refine=refine)
        assert stacked.num_markets == 50
        assert stacked.feasible.all()
        assert_equilibria_match(stacked, markets, refine=refine)

    @pytest.mark.parametrize("refine", [True, False])
    def test_dropout_regime_matches_bitwise(self, refine):
        """Markets with thresholds inside [C, p_max]: the kinked candidate
        enumeration stays bitwise-equal across the stack."""
        markets = dropout_markets()
        stacked = MarketStack(markets).equilibria_stacked(refine=refine)
        assert_equilibria_match(stacked, markets, refine=refine)

    def test_single_market_stack_is_equilibrium(self):
        """M = 1 broadcast case: the market's own ``equilibrium()`` is one
        row of the stacked solve (they share one code path)."""
        market = StackelbergMarket(paper_fig2_population())
        solved = MarketStack([market]).equilibria_stacked()
        reference = market.equilibrium()
        assert solved.equilibrium(0).price == reference.price
        assert solved.equilibrium(0).msp_utility == reference.msp_utility

    def test_segment_candidates_cross_check(self):
        """The scalar reference enumeration brackets the same optimum the
        stacked candidate matrix finds."""
        for market in dropout_markets():
            candidates = np.asarray(market._segment_candidates())
            best_reference = float(market.msp_utilities(candidates).max())
            equilibrium = market.equilibrium()
            assert equilibrium.msp_utility == pytest.approx(
                best_reference, rel=1e-9
            )


class TestInfeasibleMasking:
    def test_infeasible_member_is_masked_not_fatal(self):
        markets = random_markets(6, root_seed=3)
        markets.insert(2, infeasible_market())
        stacked = MarketStack(markets).equilibria_stacked()
        assert not stacked.feasible[2]
        assert stacked.feasible.sum() == 6
        assert np.isnan(stacked.prices[2])
        assert np.isnan(stacked.msp_utilities[2])
        assert not stacked.capacity_binding[2]
        with pytest.raises(InfeasibleMarketError, match="no profitable trade"):
            stacked.equilibrium(2)
        with pytest.raises(InfeasibleMarketError):
            markets[2].equilibrium()  # per-market semantics agree

    def test_feasible_members_unaffected_by_masked_one(self):
        feasible = random_markets(5, root_seed=9)
        mixed = feasible[:2] + [infeasible_market()] + feasible[2:]
        solved = MarketStack(mixed).equilibria_stacked()
        assert_equilibria_match(
            MarketStack(feasible).equilibria_stacked(),
            feasible,
            refine=True,
        )
        for m, market in enumerate(mixed):
            if bool(solved.feasible[m]):
                reference = market.equilibrium()
                assert solved.equilibrium(m).price == reference.price

    def test_equilibria_list_has_none_for_masked(self):
        markets = [StackelbergMarket(paper_fig2_population()), infeasible_market()]
        solved = MarketStack(markets).equilibria_stacked()
        listed = solved.equilibria()
        assert listed[0] is not None and listed[1] is None


class TestBatchedSolvers:
    def test_golden_batch_matches_scalar_bitwise(self):
        """Lockstep golden sections equal M independent scalar searches."""
        peaks = np.array([3.0, 7.5, 12.25, 20.0])

        def batched(x):
            return -((np.asarray(x) - peaks) ** 2)

        lows = np.array([1.0, 1.0, 10.0, 19.999999999999])
        highs = np.array([6.0, 30.0, 14.0, 20.000000000001])
        best, values = golden_section_maximize_batch(batched, lows, highs)
        for m in range(peaks.size):
            ref_best, ref_value = golden_section_maximize(
                lambda x, m=m: -((x - peaks[m]) ** 2),
                float(lows[m]),
                float(highs[m]),
            )
            assert best[m] == ref_best
            assert values[m] == ref_value

    def test_grid_then_golden_batch_matches_scalar_bitwise(self):
        peaks = np.array([2.0, 9.0, 4.5])

        def batched(x):
            x = np.asarray(x)
            p = peaks[:, np.newaxis] if x.ndim == 2 else peaks
            return np.sin(x / 3.0) - (x - p) ** 2 / 40.0

        lows = np.array([1.0, 1.0, 4.5])
        highs = np.array([12.0, 10.0, 4.5])
        best, values = grid_then_golden_batch(batched, lows, highs)
        for m in range(peaks.size):
            ref_best, ref_value = grid_then_golden(
                lambda x, m=m: float(np.sin(x / 3.0) - (x - peaks[m]) ** 2 / 40.0),
                float(lows[m]),
                float(highs[m]),
                vector_objective=lambda x, m=m: np.sin(x / 3.0)
                - (x - peaks[m]) ** 2 / 40.0,
            )
            assert best[m] == ref_best
            assert values[m] == ref_value


class TestWarmBrackets:
    """Per-row warm brackets: the batch replicates a loop of scalar
    warm-started searches bitwise, including the stale fallback."""

    peaks = np.array([2.0, 9.0, 4.5, 7.25])
    lows = np.array([0.0, 0.0, 0.0, 0.0])
    highs = np.array([12.0, 12.0, 12.0, 12.0])

    def objective(self, x):
        x = np.asarray(x)
        p = self.peaks[:, np.newaxis] if x.ndim == 2 else self.peaks
        return -((x - p) ** 2)

    def scalar_reference(self, m, bracket_low, bracket_high):
        peak = float(self.peaks[m])
        return grid_then_golden(
            lambda x: -((x - peak) ** 2),
            float(self.lows[m]),
            float(self.highs[m]),
            vector_objective=lambda x: -((np.asarray(x) - peak) ** 2),
            bracket_low=bracket_low,
            bracket_high=bracket_high,
        )

    def assert_batch_matches_loop(self, bracket_lows, bracket_highs):
        best, values = grid_then_golden_batch(
            self.objective,
            self.lows,
            self.highs,
            bracket_lows=bracket_lows,
            bracket_highs=bracket_highs,
        )
        for m in range(self.peaks.size):
            warm = bracket_lows is not None and np.isfinite(
                bracket_lows[m]
            ) and np.isfinite(bracket_highs[m])
            ref_best, ref_value = self.scalar_reference(
                m,
                float(bracket_lows[m]) if warm else None,
                float(bracket_highs[m]) if warm else None,
            )
            assert best[m] == ref_best, m
            assert values[m] == ref_value, m

    def test_tight_warm_brackets_match_scalar_bitwise(self):
        self.assert_batch_matches_loop(self.peaks - 0.3, self.peaks + 0.3)

    def test_stale_brackets_fall_back_to_cold_path(self):
        # Brackets nowhere near the optima: every row refines to a warm
        # endpoint strictly inside its interval, triggers the stale rule,
        # and must equal the cold batch bitwise.
        stale_lows = self.lows + 0.5
        stale_highs = self.lows + 1.0
        self.assert_batch_matches_loop(stale_lows, stale_highs)
        best, _ = grid_then_golden_batch(
            self.objective,
            self.lows,
            self.highs,
            bracket_lows=stale_lows,
            bracket_highs=stale_highs,
        )
        cold_best, _ = grid_then_golden_batch(
            self.objective, self.lows, self.highs
        )
        assert (best == cold_best).all()

    def test_mixed_warm_and_cold_rows(self):
        bracket_lows = self.peaks - 0.3
        bracket_highs = self.peaks + 0.3
        bracket_lows[1] = np.nan  # rows 1 and 3 take the cold path
        bracket_highs[3] = np.nan
        self.assert_batch_matches_loop(bracket_lows, bracket_highs)

    def test_brackets_clip_to_the_interval(self):
        # Warm brackets poking outside [low, high] clip — never probe out.
        self.assert_batch_matches_loop(self.peaks - 100.0, self.peaks + 100.0)

    def test_lonely_bracket_rejected(self):
        with pytest.raises(GameError, match="together"):
            grid_then_golden(
                lambda x: -(x**2), 0.0, 1.0, bracket_low=0.2
            )
        with pytest.raises(GameError, match="together"):
            grid_then_golden_batch(
                self.objective, self.lows, self.highs,
                bracket_lows=self.peaks,
            )

    def test_inverted_warm_bracket_rejected(self):
        with pytest.raises(GameError):
            grid_then_golden_batch(
                self.objective,
                self.lows,
                self.highs,
                bracket_lows=self.peaks + 1.0,
                bracket_highs=self.peaks - 1.0,
            )


class TestReroutedCallers:
    def test_oracle_from_stack_equals_per_market(self):
        markets = random_markets(8, root_seed=21)
        stacked_policies = OraclePricing.from_stack(markets)
        for market, policy in zip(markets, stacked_policies):
            assert (
                policy.equilibrium_price
                == OraclePricing(market).equilibrium_price
            )

    def test_welfare_reports_stacked_equal_per_market(self):
        markets = random_markets(6, root_seed=17)
        stacked = welfare_reports_stacked(markets)
        for market, report in zip(markets, stacked):
            reference = welfare_report(market)
            assert report.monopoly_price == reference.monopoly_price
            assert report.monopoly_welfare == reference.monopoly_welfare
            assert report.planner_price == reference.planner_price
            assert report.planner_welfare == reference.planner_welfare
            assert report.deadweight_loss == reference.deadweight_loss

    def test_vector_env_equilibria_one_stacked_solve(self):
        markets = random_markets(5, root_seed=29, max_vmus=4)
        # A fleet needs one observation layout: equalise N.
        populations = [sample_population(3, seed=s) for s in range(5)]
        fleet = [
            StackelbergMarket(pop, config=markets[i].config)
            for i, pop in enumerate(populations)
        ]
        env = VectorMigrationEnv.from_markets(fleet, seed=0)
        solved = env.equilibria()
        for market, equilibrium in zip(fleet, solved):
            assert equilibrium.price == market.equilibrium().price

    def test_vector_env_batched_reset_bit_equal_to_sequential(self):
        populations = [sample_population(3, seed=s) for s in range(4)]
        configs = [
            MarketConfig(unit_cost=float(4.0 + i), max_bandwidth=30.0 + i)
            for i in range(4)
        ]
        fleet = [
            StackelbergMarket(pop, config=config)
            for pop, config in zip(populations, configs)
        ]
        batched = VectorMigrationEnv.from_markets(fleet, seed=123)
        observations = batched.reset()
        sequential = VectorMigrationEnv.from_markets(fleet, seed=123)
        reference = np.stack([env.reset() for env in sequential.envs])
        assert (observations == reference).all()


def assert_stacks_bitwise_equal(reference, solved):
    """Every field of two StackedEquilibria equal bitwise (NaN == NaN)."""
    for name in ("prices", "demands", "msp_utilities", "vmu_utilities"):
        assert np.array_equal(
            getattr(reference, name), getattr(solved, name), equal_nan=True
        ), name
    for name in (
        "capacity_binding",
        "price_cap_binding",
        "feasible",
        "mask",
        "counts",
        "unit_costs",
    ):
        assert (getattr(reference, name) == getattr(solved, name)).all(), name


class TestChunkedEqualsUnchunked:
    """Tentpole acceptance: ``equilibria_stacked_chunked`` is bitwise-equal
    to ``equilibria_stacked`` for every chunk size. Reference and chunked
    runs always use *fresh* stacks — the two entry points share a memo, so
    reusing one stack would make the comparison vacuous."""

    def test_50_ragged_stacks_across_all_chunk_sizes(self):
        """Property: 50 random ragged stacks (every third with an
        infeasible member, alternating refine) × chunk sizes
        {1, 3, 7, M, M + 13} — all bitwise-equal to the unchunked solve."""
        rng = np.random.default_rng(2024)
        for trial in range(50):
            markets = random_markets(
                int(rng.integers(2, 9)),
                root_seed=1000 + trial,
                max_vmus=7,
            )
            if trial % 3 == 0:
                markets.insert(
                    int(rng.integers(0, len(markets) + 1)),
                    infeasible_market(),
                )
            refine = trial % 2 == 0
            num_markets = len(markets)
            reference = MarketStack(markets).equilibria_stacked(refine=refine)
            for chunk_size in (1, 3, 7, num_markets, num_markets + 13):
                solved = MarketStack(markets).equilibria_stacked_chunked(
                    refine=refine, chunk_size=chunk_size
                )
                assert_stacks_bitwise_equal(reference, solved)

    def test_infeasible_markets_masked_across_chunk_boundaries(self):
        """Infeasible members at indices 1 and 4 with chunk_size=3: one
        masked row per chunk, masking identical to the unchunked solve."""
        markets = random_markets(6, root_seed=77)
        markets.insert(1, infeasible_market())
        markets.insert(4, infeasible_market())
        reference = MarketStack(markets).equilibria_stacked()
        solved = MarketStack(markets).equilibria_stacked_chunked(chunk_size=3)
        assert not solved.feasible[1] and not solved.feasible[4]
        assert solved.feasible.sum() == 6
        assert_stacks_bitwise_equal(reference, solved)
        with pytest.raises(InfeasibleMarketError, match="no profitable trade"):
            solved.equilibrium(4)

    def test_chunk_bytes_budget_path(self):
        markets = random_markets(9, root_seed=41)
        reference = MarketStack(markets).equilibria_stacked()
        solved = MarketStack(markets).equilibria_stacked_chunked(
            chunk_bytes=1 << 20
        )
        assert_stacks_bitwise_equal(reference, solved)

    def test_per_market_accessors_match_per_market_solves(self):
        markets = random_markets(8, root_seed=55)
        solved = MarketStack(markets).equilibria_stacked_chunked(chunk_size=3)
        assert_equilibria_match(solved, markets, refine=True)

    def test_chunked_and_unchunked_share_the_memo(self):
        stack = MarketStack(random_markets(5, root_seed=13))
        chunked = stack.equilibria_stacked_chunked(chunk_size=2)
        assert stack.equilibria_stacked() is chunked
        assert stack.equilibria_stacked_chunked(chunk_size=1) is chunked

    def test_resolve_chunk_size_semantics(self):
        from repro.core.marketstack import (
            DEFAULT_CHUNK_BYTES,
            resolve_chunk_size,
            solve_scratch_bytes_per_market,
        )
        from repro.errors import ConfigurationError

        per_market = solve_scratch_bytes_per_market(6)
        # explicit chunk_size wins over any byte budget, clamped to M
        assert resolve_chunk_size(10, 6, chunk_size=3, chunk_bytes=1) == 3
        assert resolve_chunk_size(10, 6, chunk_size=99) == 10
        # byte budgets floor-divide, never below one market per chunk
        assert resolve_chunk_size(10_000, 6, chunk_bytes=1) == 1
        assert (
            resolve_chunk_size(10_000, 6, chunk_bytes=7 * per_market) == 7
        )
        assert resolve_chunk_size(10_000, 6) == min(
            10_000, DEFAULT_CHUNK_BYTES // per_market
        )
        with pytest.raises(ConfigurationError, match="chunk_size"):
            resolve_chunk_size(10, 6, chunk_size=0)
        with pytest.raises(ConfigurationError, match="chunk_bytes"):
            resolve_chunk_size(10, 6, chunk_bytes=0)


class TestScalarAccessorCache:
    def test_equilibrium_returns_cached_object(self):
        solved = MarketStack(random_markets(4, root_seed=19)).equilibria_stacked()
        first = solved.equilibrium(2)
        assert solved.equilibrium(2) is first  # O(1) repeated access

    def test_cached_equilibrium_arrays_are_read_only(self):
        solved = MarketStack(random_markets(3, root_seed=23)).equilibria_stacked()
        equilibrium = solved.equilibrium(0)
        with pytest.raises(ValueError):
            equilibrium.demands[0] = 0.0
        with pytest.raises(ValueError):
            solved.prices[0] = 1.0  # stacked backing arrays frozen too


class TestVectorisedInternalsMatchLoops:
    """Satellite acceptance: the vectorised construction / totals /
    landscape paths equal their per-market loop references bitwise."""

    def test_construction_matches_per_market_fill_loop(self):
        markets = random_markets(20, root_seed=31, max_vmus=9)
        stack = MarketStack(markets)
        n_max = stack.max_vmus
        alphas = np.ones((len(markets), n_max))
        data = np.ones((len(markets), n_max))
        for m, market in enumerate(markets):
            alphas[m, : market.num_vmus] = market.immersion_coefs
            data[m, : market.num_vmus] = market.data_units
        assert (stack.immersion_coefs == alphas).all()
        assert (stack.data_units == data).all()
        assert (
            stack.counts == np.array([m.num_vmus for m in markets])
        ).all()

    def test_ragged_totals_match_per_market_sums(self):
        markets = random_markets(20, root_seed=37, max_vmus=9)
        stack = MarketStack(markets)
        outcome = stack.outcomes_stacked(
            np.linspace(10.0, 30.0, len(markets))
        )
        totals = outcome.total_vmu_utilities()
        for m, market in enumerate(markets):
            expected = outcome.vmu_utilities[m, : market.num_vmus].sum()
            assert totals[m] == expected

    def test_leader_landscapes_match_per_market_grids(self):
        from repro.game.solvers import uniform_price_grid

        markets = random_markets(6, root_seed=43)
        stack = MarketStack(markets)
        landscape = stack.leader_landscapes(grid_points=64)
        for m, market in enumerate(markets):
            grid = uniform_price_grid(
                market.config.unit_cost, market.config.max_price, 64
            )
            assert (landscape.prices[m] == grid).all()
            reference = market.outcomes_batch(grid)
            assert (
                landscape.market_rows(m).msp_utilities
                == reference.msp_utilities
            ).all()

    def test_leader_landscapes_validates_grid_points(self):
        from repro.errors import ConfigurationError

        stack = MarketStack(random_markets(2, root_seed=47))
        with pytest.raises(ConfigurationError, match="grid_points"):
            stack.leader_landscapes(grid_points=1)
