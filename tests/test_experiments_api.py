"""Spec-API tests: registry, parameter validation, uniform payload
round-trips, and plan/assemble vs direct bitwise equality.

DRL runs use the smoke budget — these tests pin the *contract* (every
registered experiment compiles to scheduler jobs whose assembled result
equals the direct sequential path bitwise, and every result type
round-trips through its generated JSON payload), not training quality.
"""

import json

import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments import (
    ExperimentConfig,
    Fig2Result,
    JobScheduler,
    experiment_names,
    get_experiment,
    run_experiment,
    schedule,
)
from repro.experiments import api
from repro.experiments.api import ParamSpec
from repro.utils.serialization import load_json, save_json

SMOKE = ExperimentConfig.smoke()

# One tiny-but-real parameterisation per registered experiment: every
# spec's plan/assemble, direct path, and payload codec run against these.
TINY_PARAMS = {
    "fig2": {"config": SMOKE},
    "fig3_cost": {
        "config": SMOKE,
        "costs": (5.0, 9.0),
        "schemes": ("greedy", "random", "equilibrium"),
    },
    "fig3_vmus": {
        "config": SMOKE,
        "counts": (1, 2),
        "schemes": ("greedy", "equilibrium"),
    },
    "distance_sweep": {"distances_m": (500.0, 1000.0)},
    "fading_sweep": {"draws": 4},
    "population_sweep": {"num_vmus": 2, "draws": 3},
    "reward_ablation": {"config": SMOKE, "modes": ("utility",)},
    "history_ablation": {"config": SMOKE, "lengths": (1, 2)},
    "capacity_ablation": {"capacities": (10.0, 50.0)},
    "city_sweep": {"m": 6, "chunk_size": 2},
    "pricing_service": {
        "m": 6,
        "windows": 3,
        "queries_per_window": 4,
        "churn": 0.34,
    },
    "welfare": {},
    "bayesian_pricing": {"num_scenarios": 3, "seed": 1},
    "price_of_anarchy": {"ns": (1, 2), "max_iterations": 40},
    "multiseed": {
        "config": SMOKE,
        "seeds": (0, 1),
        "schemes": ("random", "equilibrium"),
    },
}


@pytest.fixture(scope="module")
def direct_results():
    """Every experiment's direct (schedulerless) result, computed once."""
    return {
        name: run_experiment(name, params)
        for name, params in TINY_PARAMS.items()
    }


class TestRegistry:
    def test_every_experiment_is_registered(self):
        assert experiment_names() == sorted(TINY_PARAMS)

    def test_get_experiment_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("fig9")

    def test_specs_carry_schema_and_result_type(self):
        for name in experiment_names():
            spec = get_experiment(name)
            assert spec.description
            assert spec.params, name
            assert isinstance(spec.result_type, type)


class TestJobsPathBitwiseEqualsDirect:
    """Acceptance: every registered experiment runs through the scheduler
    and assembles a result bitwise-equal to the direct sequential path."""

    @pytest.mark.parametrize("name", sorted(TINY_PARAMS))
    def test_scheduled_equals_direct(self, name, direct_results):
        scheduled = run_experiment(
            name, TINY_PARAMS[name], scheduler=JobScheduler(workers=1)
        )
        assert scheduled == direct_results[name]

    @pytest.mark.parametrize("name", sorted(TINY_PARAMS))
    def test_plan_compiles_to_jobs(self, name):
        plan = schedule(name, TINY_PARAMS[name])
        assert plan.experiment == name
        # Every job spec must survive the JSON wire (the schedule CLI /
        # remote-backend format).
        specs = json.loads(json.dumps(plan.job_specs()))
        assert len(specs) == len(plan.jobs)
        for spec in specs:
            assert set(spec) == {"kind", "payload"}

    def test_fig2_and_ablations_decompose_into_jobs(self):
        assert [j.kind for j in schedule("fig2", TINY_PARAMS["fig2"]).jobs] == [
            "training_run"
        ]
        history = schedule("history_ablation", TINY_PARAMS["history_ablation"])
        assert [j.kind for j in history.jobs] == ["training_run"] * 2
        capacity = schedule(
            "capacity_ablation", TINY_PARAMS["capacity_ablation"]
        )
        assert [j.kind for j in capacity.jobs] == ["equilibrium_cell"] * 2
        shards = schedule(
            "multiseed", {**TINY_PARAMS["multiseed"], "shards": 2}
        )
        assert [j.kind for j in shards.jobs] == ["multiseed_shard"] * 2


class TestPayloadRoundTrips:
    """Acceptance: load_json(save_json(r)) is bitwise-equal for every
    registered result type — not just MultiSeedResult."""

    @pytest.mark.parametrize("name", sorted(TINY_PARAMS))
    def test_json_round_trip_identity(self, name, direct_results, tmp_path):
        spec = get_experiment(name)
        result = direct_results[name]
        path = save_json(
            tmp_path / f"{name}.json", spec.result_to_payload(result)
        )
        assert spec.result_from_payload(load_json(path)) == result

    def test_codec_rejects_non_mapping(self):
        with pytest.raises(ExperimentError, match="mapping"):
            api.result_from_payload(Fig2Result, [1, 2, 3])

    def test_codec_rejects_missing_and_unexpected_fields(self):
        spec = get_experiment("welfare")
        payload = spec.result_to_payload(run_experiment("welfare"))
        short = {k: v for k, v in payload.items() if k != "efficiency"}
        with pytest.raises(ExperimentError, match="missing=\\['efficiency'\\]"):
            spec.result_from_payload(short)
        with pytest.raises(ExperimentError, match="unexpected=\\['bogus'\\]"):
            spec.result_from_payload({**payload, "bogus": 1})

    def test_wrong_result_type_rejected(self):
        spec = get_experiment("welfare")
        with pytest.raises(ExperimentError, match="WelfareResult"):
            spec.result_to_payload(object())


class TestParamValidation:
    """Acceptance: a typo'd parameter key errors loudly instead of
    silently falling back to a default."""

    def test_run_experiment_rejects_unknown_key(self):
        with pytest.raises(ConfigurationError, match="'episodess'"):
            run_experiment("fig2", {"episodess": 2})

    def test_schedule_rejects_unknown_key(self):
        with pytest.raises(ConfigurationError, match="'draw'"):
            schedule("fading_sweep", {"draw": 4})

    def test_multiseed_metric_validated_before_any_training(self):
        """A typo'd metric must fail up front on every entry point — not
        minutes later in getattr inside a (possibly worker) evaluation."""
        bad = {**TINY_PARAMS["multiseed"], "metric": "mean_msp_utilty"}
        with pytest.raises(ValueError, match="mean_msp_utilty"):
            run_experiment("multiseed", bad)
        with pytest.raises(ValueError, match="PolicyEvaluation field"):
            schedule("multiseed", bad)

    def test_ill_typed_value_rejected_naming_param(self):
        with pytest.raises(ConfigurationError, match="'episodes'"):
            run_experiment("fig2", {"episodes": "lots"})
        with pytest.raises(ConfigurationError, match="'costs'"):
            schedule("fig3_cost", {"costs": 5.0})

    def test_none_means_default(self):
        spec = get_experiment("fig3_cost")
        validated = spec.validate({"costs": None})
        assert validated["costs"] == (5.0, 6.0, 7.0, 8.0, 9.0)

    def test_param_parse_types(self):
        assert ParamSpec("s", "ints").parse("0,1,2") == (0, 1, 2)
        assert ParamSpec("c", "floats").parse("5,7.5") == (5.0, 7.5)
        assert ParamSpec("m", "strs").parse("drl, random") == ("drl", "random")
        assert ParamSpec("b", "bool").parse("yes") is True
        assert ParamSpec("e", "int?").parse("none") is None
        assert ParamSpec("e", "int?").parse("3") == 3
        with pytest.raises(ConfigurationError, match="'e'"):
            ParamSpec("e", "int?").parse("many")

    def test_fading_param_parses_names_and_json_payloads(self):
        from repro.channel.fading import LogNormalShadowing, RicianFading

        spec = ParamSpec("fading", "fading?")
        assert type(spec.parse("rayleigh")).__name__ == "RayleighFading"
        assert spec.parse("nofading").__class__.__name__ == "NoFading"
        assert spec.parse("none") is None  # "none" = unset → default
        rician = spec.parse('{"model": "rician", "k_factor": 3.0}')
        assert rician == RicianFading(k_factor=3.0)
        # Parameterised models by bare name must explain the JSON form.
        with pytest.raises(ConfigurationError, match="JSON"):
            spec.parse("rician")
        with pytest.raises(ConfigurationError, match="unknown fading"):
            spec.parse("nakagami")
        # Encode/decode round trip for a parameterised model.
        shadow = LogNormalShadowing(sigma_db=4.0)
        assert spec.decode(spec.encode(shadow)) == shadow

    def test_unknown_param_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown type"):
            ParamSpec("x", "complex128")

    def test_resolve_config_presets_and_overrides(self):
        assert api.resolve_config({"preset": "smoke"}) == SMOKE
        assert api.resolve_config({"preset": "quick", "seed": 7}).seed == 7
        resolved = api.resolve_config({"config": SMOKE, "episodes": 2})
        assert resolved.num_episodes == 2
        assert resolved.rounds_per_episode == SMOKE.rounds_per_episode
        with pytest.raises(ConfigurationError, match="unknown preset"):
            api.resolve_config({"preset": "huge"})


class TestShardsFollowScheduler:
    def test_multiseed_shards_default_to_scheduler_workers(
        self, direct_results
    ):
        """run_experiment('multiseed', ..., scheduler=N workers) must fan
        out N shard jobs when shards is unset — --workers alone may not
        silently collapse to one sequential job."""
        scheduler = JobScheduler(workers=2)
        result = run_experiment(
            "multiseed", TINY_PARAMS["multiseed"], scheduler=scheduler
        )
        assert scheduler.jobs_executed == 2
        assert result == direct_results["multiseed"]

    def test_explicit_shards_win_over_scheduler_workers(self):
        scheduler = JobScheduler(workers=2)
        run_experiment(
            "multiseed",
            {**TINY_PARAMS["multiseed"], "shards": 1},
            scheduler=scheduler,
        )
        assert scheduler.jobs_executed == 1


class TestResumeFromCache:
    """Acceptance: a killed fig2/ablation run resumes from its cache with
    results bitwise-equal to the sequential path."""

    def test_fig2_resumes_without_retraining(self, tmp_path, direct_results):
        scheduler = JobScheduler(workers=1, cache_dir=tmp_path)
        first = run_experiment("fig2", TINY_PARAMS["fig2"], scheduler=scheduler)
        assert first == direct_results["fig2"]
        assert scheduler.jobs_executed == 1
        # The training job parked its agent next to the result cache.
        assert len(list((tmp_path / "checkpoints").glob("*.npz"))) == 1
        resumed_scheduler = JobScheduler(workers=1, cache_dir=tmp_path)
        resumed = run_experiment(
            "fig2", TINY_PARAMS["fig2"], scheduler=resumed_scheduler
        )
        assert resumed == direct_results["fig2"]
        assert resumed_scheduler.jobs_executed == 0
        assert resumed_scheduler.cache_hits == 1

    def test_killed_history_ablation_resumes(self, tmp_path, direct_results):
        params = TINY_PARAMS["history_ablation"]
        scheduler = JobScheduler(workers=1, cache_dir=tmp_path)
        baseline = run_experiment(
            "history_ablation", params, scheduler=scheduler
        )
        cached = sorted(tmp_path.glob("*.json"))
        assert len(cached) == 2  # one training_run per history length
        # Simulate a run killed after finishing only the first length.
        cached[1].unlink()
        resumed_scheduler = JobScheduler(workers=1, cache_dir=tmp_path)
        resumed = run_experiment(
            "history_ablation", params, scheduler=resumed_scheduler
        )
        assert resumed_scheduler.cache_hits == 1
        assert resumed_scheduler.jobs_executed == 1
        assert resumed == baseline
        assert resumed == direct_results["history_ablation"]


class TestShimsAreThin:
    """The historical run_* functions are shims over run_experiment."""

    def test_run_fig2_equals_spec_path(self, direct_results):
        from repro.experiments import run_fig2

        assert run_fig2(SMOKE) == direct_results["fig2"]

    def test_run_capacity_ablation_accepts_scheduler(self, direct_results):
        from repro.experiments import run_capacity_ablation

        scheduled = run_capacity_ablation(
            capacities=(10.0, 50.0), scheduler=JobScheduler(workers=1)
        )
        assert scheduled == direct_results["capacity_ablation"]

    def test_run_welfare_matches_report(self):
        from repro.core.stackelberg import StackelbergMarket
        from repro.core.welfare import welfare_report
        from repro.entities.vmu import paper_fig2_population
        from repro.experiments import run_welfare

        report = welfare_report(StackelbergMarket(paper_fig2_population()))
        result = run_welfare()
        assert result.monopoly_price == report.monopoly_price
        assert result.planner_welfare == report.planner_welfare
        assert result.efficiency == report.efficiency
