"""Game-toolkit tests: solvers, analysis helpers, best-response dynamics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GameError
from repro.game.analysis import (
    is_concave_on,
    numerical_derivative,
    numerical_second_derivative,
    verify_best_response,
    verify_no_profitable_deviation,
)
from repro.game.best_response import iterate_best_response
from repro.game.solvers import bisect_root, golden_section_maximize, grid_then_golden


class TestGoldenSection:
    def test_quadratic(self):
        argmax, value = golden_section_maximize(lambda x: -(x - 3.0) ** 2, 0.0, 10.0)
        assert argmax == pytest.approx(3.0, abs=1e-6)
        assert value == pytest.approx(0.0, abs=1e-10)

    def test_boundary_maximum(self):
        argmax, _ = golden_section_maximize(lambda x: x, 0.0, 1.0)
        assert argmax == pytest.approx(1.0, abs=1e-6)

    def test_log_utility(self):
        # max of ln(1+x) - 0.5x at x = 1.
        argmax, _ = golden_section_maximize(
            lambda x: math.log1p(x) - 0.5 * x, 0.0, 10.0
        )
        assert argmax == pytest.approx(1.0, abs=1e-6)

    def test_degenerate_bracket(self):
        argmax, value = golden_section_maximize(lambda x: -x * x, 2.0, 2.0)
        assert argmax == 2.0

    def test_inverted_bracket_rejected(self):
        with pytest.raises(GameError):
            golden_section_maximize(lambda x: x, 1.0, 0.0)

    @given(st.floats(min_value=-5.0, max_value=5.0))
    def test_quadratic_family(self, center):
        argmax, _ = golden_section_maximize(
            lambda x: -((x - center) ** 2), -10.0, 10.0
        )
        assert argmax == pytest.approx(center, abs=1e-5)


class TestBisectRoot:
    def test_linear(self):
        assert bisect_root(lambda x: x - 2.5, 0.0, 10.0) == pytest.approx(2.5)

    def test_derivative_of_concave(self):
        # root of d/dx [ln(1+x) - 0.2x] -> 1/(1+x) = 0.2 -> x = 4.
        root = bisect_root(lambda x: 1.0 / (1.0 + x) - 0.2, 0.0, 100.0)
        assert root == pytest.approx(4.0, abs=1e-8)

    def test_endpoint_root(self):
        assert bisect_root(lambda x: x, 0.0, 1.0) == 0.0

    def test_no_sign_change_rejected(self):
        with pytest.raises(GameError, match="no sign change"):
            bisect_root(lambda x: x + 10.0, 0.0, 1.0)


class TestGridThenGolden:
    def test_smooth(self):
        argmax, _ = grid_then_golden(lambda x: -(x - 7.0) ** 2, 0.0, 10.0)
        assert argmax == pytest.approx(7.0, abs=1e-6)

    def test_kinked_objective(self):
        # max(-|x-3|, -2|x-8|+1): global max at x=8 (value 1) with a kink.
        def objective(x):
            return max(-abs(x - 3.0), -2.0 * abs(x - 8.0) + 1.0)

        argmax, value = grid_then_golden(objective, 0.0, 10.0, grid_points=512)
        assert argmax == pytest.approx(8.0, abs=1e-3)
        assert value == pytest.approx(1.0, abs=1e-3)

    def test_flat_interval(self):
        argmax, value = grid_then_golden(lambda x: 1.0, 0.0, 1.0)
        assert value == 1.0

    def test_too_few_points_rejected(self):
        with pytest.raises(GameError):
            grid_then_golden(lambda x: x, 0.0, 1.0, grid_points=2)


class TestAutoVectorScan:
    """The coarse scan probes the scalar objective with the whole grid and
    must stay bitwise-identical to the per-point loop."""

    @staticmethod
    def _scalar_only(objective):
        """Wrap a ufunc-style objective so arrays are rejected — forces
        the historical per-point scan."""

        def wrapped(p):
            return objective(float(p))

        return wrapped

    def test_ufunc_objective_matches_scalar_loop_bitwise(self):
        def objective(p):
            return np.sin(p) - 0.1 * (p - 4.0) ** 2

        vector_result = grid_then_golden(objective, 0.0, 10.0, grid_points=97)
        scalar_result = grid_then_golden(
            self._scalar_only(objective), 0.0, 10.0, grid_points=97
        )
        assert vector_result == scalar_result

    def test_tie_break_picks_first_maximum(self):
        # Symmetric two-peak objective: several grid points share the max.
        def objective(p):
            return -np.abs(np.abs(p) - 2.0)

        vector_result = grid_then_golden(objective, -4.0, 4.0, grid_points=17)
        scalar_result = grid_then_golden(
            self._scalar_only(objective), -4.0, 4.0, grid_points=17
        )
        assert vector_result == scalar_result

    def test_reducing_callable_falls_back(self):
        # Accepts an array but returns a scalar — the probe must reject
        # the wrong-shape result and run the per-point loop.
        def objective(p):
            return float(np.sum(-((p - 3.0) ** 2)))

        argmax, _ = grid_then_golden(objective, 0.0, 10.0)
        assert argmax == pytest.approx(3.0, abs=1e-6)

    def test_scalar_only_callable_falls_back(self):
        argmax, _ = grid_then_golden(
            lambda p: -abs(float(p) - 6.0), 0.0, 10.0
        )
        assert argmax == pytest.approx(6.0, abs=1e-6)


class TestAnalysis:
    def test_numerical_derivative(self):
        assert numerical_derivative(lambda x: x**2, 3.0) == pytest.approx(6.0, abs=1e-4)

    def test_numerical_second_derivative(self):
        assert numerical_second_derivative(lambda x: x**2, 1.0) == pytest.approx(
            2.0, abs=1e-3
        )

    def test_concave_detected(self):
        assert is_concave_on(lambda x: -(x**2), -5.0, 5.0)
        assert is_concave_on(math.log1p, 0.0, 10.0)

    def test_convex_rejected(self):
        assert not is_concave_on(lambda x: x**2, -5.0, 5.0)

    def test_verify_best_response_true(self):
        assert verify_best_response(lambda x: -(x - 2.0) ** 2, 2.0, 0.0, 5.0)

    def test_verify_best_response_false(self):
        assert not verify_best_response(lambda x: -(x - 2.0) ** 2, 0.5, 0.0, 5.0)

    def test_verify_no_profitable_deviation(self):
        # 2-player game with decoupled quadratic utilities.
        utilities = [lambda x: -(x - 1.0) ** 2, lambda x: -(x - 3.0) ** 2]
        assert verify_no_profitable_deviation(
            utilities, [1.0, 3.0], [(0.0, 5.0), (0.0, 5.0)]
        )
        assert not verify_no_profitable_deviation(
            utilities, [1.0, 0.0], [(0.0, 5.0), (0.0, 5.0)]
        )

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(GameError):
            verify_no_profitable_deviation([lambda x: x], [1.0, 2.0], [(0, 1)])


class TestBestResponseDynamics:
    def test_decoupled_converges_in_one_step(self):
        # BR independent of opponents: fixed point after one iteration.
        target = np.array([2.0, 5.0])
        result = iterate_best_response(lambda x: target, [0.0, 0.0])
        assert result.converged
        assert result.iterations <= 2
        np.testing.assert_allclose(result.strategies, target)

    def test_contraction_converges(self):
        # BR(x) = 0.5 x + 1 -> fixed point 2.
        result = iterate_best_response(
            lambda x: 0.5 * x + 1.0, [10.0], tolerance=1e-12
        )
        assert result.converged
        assert result.strategies[0] == pytest.approx(2.0, abs=1e-9)

    def test_damping_stabilises_oscillation(self):
        # BR(x) = -x oscillates undamped; damping 0.5 converges to 0.
        undamped = iterate_best_response(
            lambda x: -x, [1.0], damping=1.0, max_iterations=50
        )
        assert not undamped.converged
        damped = iterate_best_response(lambda x: -x, [1.0], damping=0.5)
        assert damped.converged
        assert damped.strategies[0] == pytest.approx(0.0, abs=1e-8)

    def test_zero_damping_rejected(self):
        with pytest.raises(GameError):
            iterate_best_response(lambda x: x, [1.0], damping=0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GameError, match="shape"):
            iterate_best_response(lambda x: np.zeros(3), [1.0, 2.0])

    def test_residual_reported(self):
        result = iterate_best_response(lambda x: x * 0.9, [1.0], max_iterations=3)
        assert not result.converged
        assert result.residual > 0.0
