"""Game-toolkit tests: solvers, analysis helpers, best-response dynamics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GameError
from repro.game.analysis import (
    is_concave_on,
    numerical_derivative,
    numerical_second_derivative,
    verify_best_response,
    verify_no_profitable_deviation,
)
from repro.game.best_response import (
    iterate_best_response,
    iterate_best_response_batch,
)
from repro.game.solvers import bisect_root, golden_section_maximize, grid_then_golden


class TestGoldenSection:
    def test_quadratic(self):
        argmax, value = golden_section_maximize(lambda x: -(x - 3.0) ** 2, 0.0, 10.0)
        assert argmax == pytest.approx(3.0, abs=1e-6)
        assert value == pytest.approx(0.0, abs=1e-10)

    def test_boundary_maximum(self):
        argmax, _ = golden_section_maximize(lambda x: x, 0.0, 1.0)
        assert argmax == pytest.approx(1.0, abs=1e-6)

    def test_log_utility(self):
        # max of ln(1+x) - 0.5x at x = 1.
        argmax, _ = golden_section_maximize(
            lambda x: math.log1p(x) - 0.5 * x, 0.0, 10.0
        )
        assert argmax == pytest.approx(1.0, abs=1e-6)

    def test_degenerate_bracket(self):
        argmax, value = golden_section_maximize(lambda x: -x * x, 2.0, 2.0)
        assert argmax == 2.0

    def test_inverted_bracket_rejected(self):
        with pytest.raises(GameError):
            golden_section_maximize(lambda x: x, 1.0, 0.0)

    @given(st.floats(min_value=-5.0, max_value=5.0))
    def test_quadratic_family(self, center):
        argmax, _ = golden_section_maximize(
            lambda x: -((x - center) ** 2), -10.0, 10.0
        )
        assert argmax == pytest.approx(center, abs=1e-5)


class TestBisectRoot:
    def test_linear(self):
        assert bisect_root(lambda x: x - 2.5, 0.0, 10.0) == pytest.approx(2.5)

    def test_derivative_of_concave(self):
        # root of d/dx [ln(1+x) - 0.2x] -> 1/(1+x) = 0.2 -> x = 4.
        root = bisect_root(lambda x: 1.0 / (1.0 + x) - 0.2, 0.0, 100.0)
        assert root == pytest.approx(4.0, abs=1e-8)

    def test_endpoint_root(self):
        assert bisect_root(lambda x: x, 0.0, 1.0) == 0.0

    def test_no_sign_change_rejected(self):
        with pytest.raises(GameError, match="no sign change"):
            bisect_root(lambda x: x + 10.0, 0.0, 1.0)


class TestGridThenGolden:
    def test_smooth(self):
        argmax, _ = grid_then_golden(lambda x: -(x - 7.0) ** 2, 0.0, 10.0)
        assert argmax == pytest.approx(7.0, abs=1e-6)

    def test_kinked_objective(self):
        # max(-|x-3|, -2|x-8|+1): global max at x=8 (value 1) with a kink.
        def objective(x):
            return max(-abs(x - 3.0), -2.0 * abs(x - 8.0) + 1.0)

        argmax, value = grid_then_golden(objective, 0.0, 10.0, grid_points=512)
        assert argmax == pytest.approx(8.0, abs=1e-3)
        assert value == pytest.approx(1.0, abs=1e-3)

    def test_flat_interval(self):
        argmax, value = grid_then_golden(lambda x: 1.0, 0.0, 1.0)
        assert value == 1.0

    def test_too_few_points_rejected(self):
        with pytest.raises(GameError):
            grid_then_golden(lambda x: x, 0.0, 1.0, grid_points=2)


class TestAutoVectorScan:
    """The coarse scan probes the scalar objective with the whole grid and
    must stay bitwise-identical to the per-point loop."""

    @staticmethod
    def _scalar_only(objective):
        """Wrap a ufunc-style objective so arrays are rejected — forces
        the historical per-point scan."""

        def wrapped(p):
            return objective(float(p))

        return wrapped

    def test_ufunc_objective_matches_scalar_loop_bitwise(self):
        def objective(p):
            return np.sin(p) - 0.1 * (p - 4.0) ** 2

        vector_result = grid_then_golden(objective, 0.0, 10.0, grid_points=97)
        scalar_result = grid_then_golden(
            self._scalar_only(objective), 0.0, 10.0, grid_points=97
        )
        assert vector_result == scalar_result

    def test_tie_break_picks_first_maximum(self):
        # Symmetric two-peak objective: several grid points share the max.
        def objective(p):
            return -np.abs(np.abs(p) - 2.0)

        vector_result = grid_then_golden(objective, -4.0, 4.0, grid_points=17)
        scalar_result = grid_then_golden(
            self._scalar_only(objective), -4.0, 4.0, grid_points=17
        )
        assert vector_result == scalar_result

    def test_reducing_callable_falls_back(self):
        # Accepts an array but returns a scalar — the probe must reject
        # the wrong-shape result and run the per-point loop.
        def objective(p):
            return float(np.sum(-((p - 3.0) ** 2)))

        argmax, _ = grid_then_golden(objective, 0.0, 10.0)
        assert argmax == pytest.approx(3.0, abs=1e-6)

    def test_scalar_only_callable_falls_back(self):
        argmax, _ = grid_then_golden(
            lambda p: -abs(float(p) - 6.0), 0.0, 10.0
        )
        assert argmax == pytest.approx(6.0, abs=1e-6)


class TestAnalysis:
    def test_numerical_derivative(self):
        assert numerical_derivative(lambda x: x**2, 3.0) == pytest.approx(6.0, abs=1e-4)

    def test_numerical_second_derivative(self):
        assert numerical_second_derivative(lambda x: x**2, 1.0) == pytest.approx(
            2.0, abs=1e-3
        )

    def test_concave_detected(self):
        assert is_concave_on(lambda x: -(x**2), -5.0, 5.0)
        assert is_concave_on(math.log1p, 0.0, 10.0)

    def test_convex_rejected(self):
        assert not is_concave_on(lambda x: x**2, -5.0, 5.0)

    def test_verify_best_response_true(self):
        assert verify_best_response(lambda x: -(x - 2.0) ** 2, 2.0, 0.0, 5.0)

    def test_verify_best_response_false(self):
        assert not verify_best_response(lambda x: -(x - 2.0) ** 2, 0.5, 0.0, 5.0)

    def test_verify_no_profitable_deviation(self):
        # 2-player game with decoupled quadratic utilities.
        utilities = [lambda x: -(x - 1.0) ** 2, lambda x: -(x - 3.0) ** 2]
        assert verify_no_profitable_deviation(
            utilities, [1.0, 3.0], [(0.0, 5.0), (0.0, 5.0)]
        )
        assert not verify_no_profitable_deviation(
            utilities, [1.0, 0.0], [(0.0, 5.0), (0.0, 5.0)]
        )

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(GameError):
            verify_no_profitable_deviation([lambda x: x], [1.0, 2.0], [(0, 1)])


class TestBestResponseDynamics:
    def test_decoupled_converges_in_one_step(self):
        # BR independent of opponents: fixed point after one iteration.
        target = np.array([2.0, 5.0])
        result = iterate_best_response(lambda x: target, [0.0, 0.0])
        assert result.converged
        assert result.iterations <= 2
        np.testing.assert_allclose(result.strategies, target)

    def test_contraction_converges(self):
        # BR(x) = 0.5 x + 1 -> fixed point 2.
        result = iterate_best_response(
            lambda x: 0.5 * x + 1.0, [10.0], tolerance=1e-12
        )
        assert result.converged
        assert result.strategies[0] == pytest.approx(2.0, abs=1e-9)

    def test_damping_stabilises_oscillation(self):
        # BR(x) = -x oscillates undamped; damping 0.5 converges to 0.
        undamped = iterate_best_response(
            lambda x: -x, [1.0], damping=1.0, max_iterations=50
        )
        assert not undamped.converged
        damped = iterate_best_response(lambda x: -x, [1.0], damping=0.5)
        assert damped.converged
        assert damped.strategies[0] == pytest.approx(0.0, abs=1e-8)

    def test_zero_damping_rejected(self):
        with pytest.raises(GameError):
            iterate_best_response(lambda x: x, [1.0], damping=0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GameError, match="shape"):
            iterate_best_response(lambda x: np.zeros(3), [1.0, 2.0])

    def test_residual_reported(self):
        result = iterate_best_response(lambda x: x * 0.9, [1.0], max_iterations=3)
        assert not result.converged
        assert result.residual > 0.0


class TestBatchBestResponseDynamics:
    def test_rows_match_scalar_iterator_bitwise(self):
        """Each stacked game's trajectory is the scalar iterator's bits:
        same contraction, same residuals, same stop round."""
        targets = np.array([[1.0, -2.0], [0.25, 0.75], [10.0, 10.0]])

        def batch_map(stack):
            return 0.5 * (stack + targets)

        batch = iterate_best_response_batch(
            batch_map, np.zeros((3, 2)), tolerance=1e-8
        )
        for row in range(3):
            scalar = iterate_best_response(
                lambda x, row=row: 0.5 * (x + targets[row]),
                [0.0, 0.0],
                tolerance=1e-8,
            )
            np.testing.assert_array_equal(batch.strategies[row], scalar.strategies)
            assert batch.iterations[row] == scalar.iterations
            assert bool(batch.converged[row]) == scalar.converged

    def test_converged_rows_freeze_while_others_run(self):
        """A fast row must stop moving the moment it converges even though
        slow rows keep iterating — no extra applications of the map."""
        rates = np.array([[0.01], [0.9]])
        calls = []

        def batch_map(stack):
            calls.append(stack.copy())
            return stack * rates

        result = iterate_best_response_batch(
            batch_map, np.array([[1.0], [1.0]]), tolerance=1e-6
        )
        assert bool(result.converged.all())
        assert result.iterations[0] < result.iterations[1]
        # After row 0 converged, its value never changed again.
        frozen_value = result.strategies[0, 0]
        for snapshot in calls[result.iterations[0] :]:
            assert snapshot[0, 0] == frozen_value

    def test_mask_excludes_padded_columns(self):
        """Ragged stacking: padded columns stay put and never count
        toward the residual."""
        mask = np.array([[True, True], [True, False]])

        def batch_map(stack):
            out = stack * 0.5
            out[1, 1] = 99.0  # response in a padded slot must be ignored
            return out

        result = iterate_best_response_batch(
            batch_map, np.ones((2, 2)), tolerance=1e-4, mask=mask
        )
        assert bool(result.converged.all())
        assert result.strategies[1, 1] == 1.0  # padding untouched

    def test_unconverged_rows_report_budget(self):
        result = iterate_best_response_batch(
            lambda stack: -stack, np.ones((1, 1)), max_iterations=7
        )
        assert not bool(result.converged[0])
        assert result.iterations[0] == 7

    def test_zero_width_games_converge_immediately(self):
        result = iterate_best_response_batch(
            lambda stack: stack, np.zeros((2, 0))
        )
        assert bool(result.converged.all())
        np.testing.assert_array_equal(result.residuals, [0.0, 0.0])

    def test_validation(self):
        with pytest.raises(GameError):
            iterate_best_response_batch(
                lambda s: s, np.zeros((2, 2)), damping=0.0
            )
        with pytest.raises(GameError):
            iterate_best_response_batch(lambda s: s, np.zeros(3))
        with pytest.raises(GameError):
            iterate_best_response_batch(
                lambda s: s, np.zeros((2, 2)), mask=np.ones((3, 2), dtype=bool)
            )
        with pytest.raises(GameError):
            iterate_best_response_batch(
                lambda s: np.zeros((2, 3)), np.zeros((2, 2))
            )

    def test_damped_batch_matches_scalar(self):
        batch = iterate_best_response_batch(
            lambda s: -s, np.ones((1, 1)), damping=0.5, tolerance=1e-8
        )
        scalar = iterate_best_response(
            lambda x: -x, [1.0], damping=0.5, tolerance=1e-8
        )
        np.testing.assert_array_equal(batch.strategies[0], scalar.strategies)
        assert batch.iterations[0] == scalar.iterations
