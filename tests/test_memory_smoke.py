"""Memory smoke: chunked city-scale solve stays inside its byte budget.

Builds a 1024-market RSU grid and solves it with a 4 MiB scratch budget.
``tracemalloc`` (which sees numpy's allocations) must report a traced
peak within the budget during the solve: the chunked path allocates one
scratch set of ``chunk_size`` rows and streams, so its peak is ~1.2 MB
here, while any regression that materialises full-stack ``(M, grid, N)``
temporaries (~12.6 MB at this size) blows straight through the 4 MiB
assertion. Run by the dedicated CI memory-smoke step, excluded from the
main tier-1 step.
"""

import tracemalloc

from repro.core import MarketStack

NUM_MARKETS = 1024
CHUNK_BYTES = 4 * 1024 * 1024


def test_chunked_solve_peak_memory_within_budget():
    stack = MarketStack.from_grid(NUM_MARKETS, seed=7)
    chunk = stack.resolve_chunk_size(chunk_bytes=CHUNK_BYTES)
    assert 1 <= chunk < NUM_MARKETS, "budget must force real chunking"

    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        solved = stack.equilibria_stacked_chunked(chunk_bytes=CHUNK_BYTES)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert int(solved.feasible.sum()) > 0
    assert peak <= CHUNK_BYTES, (
        f"solve traced peak {peak / 1e6:.1f} MB exceeds the "
        f"{CHUNK_BYTES / 1e6:.1f} MB chunk budget"
    )
