"""World-registry tests: hosting invariants and migration bookkeeping."""

import pytest

from repro.entities.registry import World
from repro.entities.rsu import RoadsideUnit
from repro.entities.vmu import VmuProfile
from repro.errors import ConfigurationError


def make_world() -> World:
    world = World()
    for index in range(3):
        world.add_rsu(
            RoadsideUnit(
                rsu_id=f"rsu-{index}",
                position_m=(1000.0 * index, 0.0),
                coverage_radius_m=700.0,
            )
        )
    return world


class TestRegistration:
    def test_add_vmu_creates_twin(self):
        world = make_world()
        twin = world.add_vmu(VmuProfile("v0", 150.0, 5.0))
        assert twin.vt_id == "vt:v0"
        assert twin.data_size_mb == pytest.approx(150.0)
        assert world.twin_of("v0") is twin

    def test_duplicate_vmu_rejected(self):
        world = make_world()
        world.add_vmu(VmuProfile("v0", 150.0, 5.0))
        with pytest.raises(ConfigurationError, match="duplicate"):
            world.add_vmu(VmuProfile("v0", 100.0, 5.0))

    def test_duplicate_rsu_rejected(self):
        world = make_world()
        with pytest.raises(ConfigurationError, match="duplicate"):
            world.add_rsu(
                RoadsideUnit("rsu-0", position_m=(0, 0), coverage_radius_m=1.0)
            )

    def test_unknown_twin_lookup(self):
        with pytest.raises(ConfigurationError, match="no twin"):
            make_world().twin_of("ghost")


class TestHosting:
    def test_host_on_add(self):
        world = make_world()
        twin = world.add_vmu(VmuProfile("v0", 150.0, 5.0), host_rsu_id="rsu-0")
        assert twin.host_rsu_id == "rsu-0"
        assert "vt:v0" in world.rsus["rsu-0"].hosted_vt_ids
        world.check_invariants()

    def test_double_host_rejected(self):
        world = make_world()
        world.add_vmu(VmuProfile("v0", 150.0, 5.0), host_rsu_id="rsu-0")
        with pytest.raises(ConfigurationError, match="already hosted"):
            world.host_twin("vt:v0", "rsu-1")

    def test_host_on_unknown_rsu(self):
        world = make_world()
        world.add_vmu(VmuProfile("v0", 150.0, 5.0))
        with pytest.raises(ConfigurationError, match="unknown RSU"):
            world.host_twin("vt:v0", "rsu-99")


class TestMigration:
    def test_migrate_moves_hosting(self):
        world = make_world()
        world.add_vmu(VmuProfile("v0", 150.0, 5.0), host_rsu_id="rsu-0")
        world.migrate_twin("vt:v0", "rsu-1")
        twin = world.twin_of("v0")
        assert twin.host_rsu_id == "rsu-1"
        assert twin.migration_count == 1
        assert "vt:v0" not in world.rsus["rsu-0"].hosted_vt_ids
        assert "vt:v0" in world.rsus["rsu-1"].hosted_vt_ids
        world.check_invariants()

    def test_migrate_releases_source_storage(self):
        world = make_world()
        world.add_vmu(VmuProfile("v0", 150.0, 5.0), host_rsu_id="rsu-0")
        before = world.rsus["rsu-0"].edge.free_storage_mb
        world.migrate_twin("vt:v0", "rsu-1")
        after = world.rsus["rsu-0"].edge.free_storage_mb
        assert after == pytest.approx(before + 150.0)

    def test_migrate_unhosted_rejected(self):
        world = make_world()
        world.add_vmu(VmuProfile("v0", 150.0, 5.0))
        with pytest.raises(ConfigurationError, match="not hosted"):
            world.migrate_twin("vt:v0", "rsu-1")

    def test_migrate_to_same_rsu_rejected(self):
        world = make_world()
        world.add_vmu(VmuProfile("v0", 150.0, 5.0), host_rsu_id="rsu-0")
        with pytest.raises(ConfigurationError, match="already hosted"):
            world.migrate_twin("vt:v0", "rsu-0")

    def test_repeated_migrations_count(self):
        world = make_world()
        world.add_vmu(VmuProfile("v0", 150.0, 5.0), host_rsu_id="rsu-0")
        world.migrate_twin("vt:v0", "rsu-1")
        world.migrate_twin("vt:v0", "rsu-2")
        world.migrate_twin("vt:v0", "rsu-0")
        assert world.twin_of("v0").migration_count == 3
        world.check_invariants()


class TestInvariantChecking:
    def test_detects_dangling_host(self):
        world = make_world()
        world.add_vmu(VmuProfile("v0", 150.0, 5.0), host_rsu_id="rsu-0")
        # Corrupt: twin points at rsu-1 but rsu-1 doesn't list it.
        world.twins["vt:v0"].host_rsu_id = "rsu-1"
        with pytest.raises(ConfigurationError):
            world.check_invariants()

    def test_detects_orphan_listing(self):
        world = make_world()
        world.add_vmu(VmuProfile("v0", 150.0, 5.0), host_rsu_id="rsu-0")
        world.rsus["rsu-1"].hosted_vt_ids.add("vt:v0")
        with pytest.raises(ConfigurationError):
            world.check_invariants()
