"""Semantics of the stochastic-game experiments.

The generic spec contract (scheduled == direct bitwise, payload codec)
is covered by ``test_experiments_api.py``; here we pin what the numbers
*mean*: oracle regret is non-negative and vanishes on a point mass, PoA
brackets efficiency against the planner, and the CLI fan-out resumes
both experiments from the job cache.
"""

import json

import pytest

from repro.experiments import (
    get_experiment,
    run_bayesian_pricing,
    run_price_of_anarchy,
    run_experiment,
)
from repro.experiments.run import main


class TestBayesianPricing:
    def test_regret_nonnegative_and_oracle_dominates(self):
        result = run_experiment(
            "bayesian_pricing", {"num_scenarios": 5, "seed": 3}
        )
        assert result.expected_regret >= 0.0
        assert result.expected_oracle_utility >= result.expected_utility
        assert len(result.scenario_prices) == 5
        assert len(result.weights) == 5
        # Per-scenario oracle beats the one-price robust policy pointwise.
        for oracle, robust in zip(
            result.scenario_oracle_utilities, result.scenario_robust_utilities
        ):
            assert oracle >= robust - 1e-9

    def test_point_mass_has_zero_regret(self):
        """One scenario: the robust price IS the oracle price."""
        result = run_experiment(
            "bayesian_pricing",
            {
                "num_scenarios": 1,
                "seed": 0,
                "alpha_jitter": 0.0,
                "data_jitter": 0.0,
            },
        )
        assert result.expected_regret == 0.0
        assert result.robust_price == result.scenario_prices[0]

    def test_table_renders(self):
        result = run_bayesian_pricing(num_scenarios=2, seed=1)
        text = str(result.table())
        assert "robust" in text.lower()
        assert str(result.num_scenarios)


class TestPriceOfAnarchy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "price_of_anarchy", {"ns": (1, 2, 4), "max_iterations": 60}
        )

    def test_rows_align_with_ns(self, result):
        assert result.ns == [1, 2, 4]
        for field in (
            result.prices,
            result.welfares,
            result.efficiencies,
            result.poa,
            result.converged,
            result.iterations,
            result.cycle_lengths,
        ):
            assert len(field) == 3

    def test_poa_is_planner_over_welfare(self, result):
        for poa, efficiency, welfare in zip(
            result.poa, result.efficiencies, result.welfares
        ):
            assert poa == result.planner_welfare / welfare
            assert efficiency == welfare / result.planner_welfare
            assert poa >= 1.0 - 1e-9  # planner is the welfare optimum

    def test_welfare_decomposes(self, result):
        for profit, surplus, welfare in zip(
            result.msp_profits, result.vmu_surpluses, result.welfares
        ):
            assert welfare == profit + surplus

    def test_monopoly_cell_tracks_welfare_baseline(self, result):
        """The N=1 cell and the welfare report's monopoly row describe the
        same market, up to the oligopoly game's price lattice."""
        assert result.prices[0] == pytest.approx(result.monopoly_price, abs=0.1)
        assert result.welfares[0] == pytest.approx(
            result.monopoly_welfare, rel=0.01
        )

    def test_table_renders(self, result):
        text = str(result.table())
        assert "PoA" in text
        assert "planner" in text


class TestCliFanOut:
    def test_bayesian_pricing_cache_resume(self, tmp_path, capsys):
        argv = [
            "run", "bayesian_pricing",
            "--param", "num_scenarios=2",
            "--param", "seed=5",
            "--workers", "1",
            "--resume",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(tmp_path / "out"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 job(s) executed, 0 from cache" in out
        assert main(argv) == 0
        assert "0 job(s) executed, 1 from cache" in capsys.readouterr().out
        payload = json.loads(
            (tmp_path / "out" / "bayesian_pricing.json").read_text()
        )
        result = get_experiment("bayesian_pricing").result_from_payload(payload)
        assert result.num_scenarios == 2

    def test_price_of_anarchy_jobs_fan_out(self, tmp_path, capsys):
        argv = [
            "run", "price_of_anarchy",
            "--param", "ns=1,2",
            "--param", "max_iterations=40",
            "--workers", "2",
            "--resume",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(tmp_path / "out"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # One welfare-baseline job plus one oligopoly cell per N.
        assert "3 job(s) executed, 0 from cache" in out
        assert main(argv) == 0
        assert "0 job(s) executed, 3 from cache" in capsys.readouterr().out


class TestShims:
    def test_run_price_of_anarchy_shim(self):
        result = run_price_of_anarchy(ns=(1, 2))
        assert result.ns == [1, 2]
