"""Mobility-substrate tests: roads, kinematics, coverage, handovers."""

import math

import numpy as np
import pytest

from repro.entities.rsu import RoadsideUnit
from repro.errors import MobilityError
from repro.mobility.coverage import CoverageMap, HandoverDetector
from repro.mobility.models import RandomWaypoint, RouteFollower
from repro.mobility.road import RoadNetwork, grid_city, straight_highway
from repro.mobility.trace import deploy_rsus_along_highway, simulate_handovers


class TestRoadNetwork:
    def test_highway_layout(self):
        net = straight_highway(5000.0, num_junctions=11)
        assert len(net.junctions()) == 11
        assert net.position("j0") == (0.0, 0.0)
        assert net.position("j10") == (5000.0, 0.0)

    def test_highway_path_length(self):
        net = straight_highway(5000.0, num_junctions=11)
        path = net.shortest_path("j0", "j10")
        assert net.path_length(path) == pytest.approx(5000.0)

    def test_grid_city_path(self):
        net = grid_city(3, 3, block_m=100.0)
        path = net.shortest_path("g0-0", "g2-2")
        assert net.path_length(path) == pytest.approx(400.0)  # Manhattan

    def test_no_route_raises(self):
        net = RoadNetwork()
        net.add_junction("a", (0.0, 0.0))
        net.add_junction("b", (10.0, 0.0))
        with pytest.raises(MobilityError, match="no route"):
            net.shortest_path("a", "b")

    def test_interpolate(self):
        net = straight_highway(1000.0, num_junctions=2)
        assert net.interpolate("j0", "j1", 0.25) == (250.0, 0.0)

    def test_interpolate_validation(self):
        net = straight_highway(1000.0, num_junctions=2)
        with pytest.raises(MobilityError):
            net.interpolate("j0", "j1", 1.5)
        with pytest.raises(MobilityError):
            net.interpolate("j1", "j0", 0.5) if not net.graph.has_edge(
                "j1", "j0"
            ) else net.interpolate("j0", "j0", 0.5)

    def test_duplicate_junction_rejected(self):
        net = RoadNetwork()
        net.add_junction("a", (0.0, 0.0))
        with pytest.raises(MobilityError, match="duplicate"):
            net.add_junction("a", (1.0, 1.0))

    def test_colocated_junctions_rejected(self):
        net = RoadNetwork()
        net.add_junction("a", (0.0, 0.0))
        net.add_junction("b", (0.0, 0.0))
        with pytest.raises(MobilityError, match="co-located"):
            net.add_road("a", "b")

    def test_random_junction_deterministic(self):
        net = grid_city(3, 3)
        assert net.random_junction(seed=0) == net.random_junction(seed=0)

    def test_invalid_constructions(self):
        with pytest.raises(MobilityError):
            straight_highway(1000.0, num_junctions=1)
        with pytest.raises(MobilityError):
            grid_city(1, 3)


class TestRouteFollower:
    def test_exact_kinematics(self):
        # 1000 m at 27.8 m/s covered in 1000/27.8 s.
        net = straight_highway(1000.0, num_junctions=2, speed_limit_mps=27.8)
        follower = RouteFollower("v", net, ["j0", "j1"])
        follower.advance(10.0)
        assert follower.position[0] == pytest.approx(278.0)
        assert follower.state.odometer_m == pytest.approx(278.0)

    def test_finishes_route(self):
        net = straight_highway(1000.0, num_junctions=2, speed_limit_mps=100.0)
        follower = RouteFollower("v", net, ["j0", "j1"])
        follower.advance(20.0)
        assert follower.finished
        assert follower.position == (1000.0, 0.0)

    def test_speed_factor(self):
        net = straight_highway(1000.0, num_junctions=2, speed_limit_mps=10.0)
        slow = RouteFollower("v", net, ["j0", "j1"], speed_factor=0.5)
        slow.advance(10.0)
        assert slow.position[0] == pytest.approx(50.0)

    def test_multi_segment(self):
        net = straight_highway(2000.0, num_junctions=3, speed_limit_mps=10.0)
        follower = RouteFollower("v", net, ["j0", "j1", "j2"])
        follower.advance(150.0)  # 1500 m: past the midpoint junction
        assert follower.position[0] == pytest.approx(1500.0)

    def test_bad_route_rejected(self):
        net = straight_highway(1000.0, num_junctions=2)
        with pytest.raises(MobilityError):
            RouteFollower("v", net, ["j0"])
        with pytest.raises(MobilityError):
            RouteFollower("v", net, ["j0", "missing"])

    def test_position_stays_on_segment(self):
        net = straight_highway(1000.0, num_junctions=2)
        follower = RouteFollower("v", net, ["j0", "j1"])
        for _ in range(30):
            x, y = follower.advance(1.0)
            assert 0.0 <= x <= 1000.0 and y == 0.0


class TestRandomWaypoint:
    def test_stays_on_network(self):
        net = grid_city(4, 4, block_m=100.0)
        agent = RandomWaypoint("v", net, seed=0)
        max_coord = 300.0
        for _ in range(120):
            x, y = agent.advance(1.0)
            assert -1e-9 <= x <= max_coord + 1e-9
            assert -1e-9 <= y <= max_coord + 1e-9

    def test_keeps_moving(self):
        net = grid_city(4, 4, block_m=100.0)
        agent = RandomWaypoint("v", net, seed=1)
        agent.advance(60.0)
        assert agent.odometer_m > 100.0

    def test_deterministic(self):
        net = grid_city(3, 3)
        a = RandomWaypoint("v", net, seed=5)
        b = RandomWaypoint("v", net, seed=5)
        a.advance(30.0)
        b.advance(30.0)
        assert a.position == b.position


class TestCoverage:
    def _rsus(self):
        return [
            RoadsideUnit("r0", position_m=(0.0, 0.0), coverage_radius_m=600.0),
            RoadsideUnit("r1", position_m=(1000.0, 0.0), coverage_radius_m=600.0),
        ]

    def test_best_server_nearest(self):
        cov = CoverageMap(self._rsus())
        assert cov.best_server((100.0, 0.0)).rsu_id == "r0"
        assert cov.best_server((900.0, 0.0)).rsu_id == "r1"

    def test_best_server_none_when_uncovered(self):
        cov = CoverageMap(self._rsus())
        assert cov.best_server((5000.0, 0.0)) is None

    def test_coverage_holes(self):
        cov = CoverageMap(self._rsus())
        holes = cov.coverage_holes([(100.0, 0.0), (5000.0, 0.0)])
        assert holes == [(5000.0, 0.0)]

    def test_duplicate_ids_rejected(self):
        rsus = self._rsus()
        rsus[1] = RoadsideUnit("r0", position_m=(1.0, 0.0), coverage_radius_m=1.0)
        with pytest.raises(MobilityError):
            CoverageMap(rsus)

    def test_handover_sequence_along_line(self):
        detector = HandoverDetector(CoverageMap(self._rsus()), hysteresis_m=25.0)
        events = []
        for x in np.linspace(0.0, 1000.0, 101):
            event = detector.observe("v", (float(x), 0.0), float(x))
            if event is not None:
                events.append(event)
        # exactly one attach + one handover, at roughly the midpoint
        assert len(events) == 2
        assert events[0].source_rsu_id is None
        assert events[1].source_rsu_id == "r0"
        assert events[1].destination_rsu_id == "r1"
        assert 500.0 <= events[1].position_m[0] <= 600.0

    def test_hysteresis_prevents_pingpong(self):
        detector = HandoverDetector(CoverageMap(self._rsus()), hysteresis_m=50.0)
        detector.observe("v", (499.0, 0.0), 0.0)
        # Oscillate around the midpoint within the hysteresis margin.
        events = [
            detector.observe("v", (500.0 + dx, 0.0), float(i))
            for i, dx in enumerate([5.0, -5.0, 10.0, -10.0, 5.0])
        ]
        assert all(e is None for e in events)

    def test_out_of_coverage_keeps_association(self):
        detector = HandoverDetector(CoverageMap(self._rsus()))
        detector.observe("v", (0.0, 0.0), 0.0)
        assert detector.observe("v", (5000.0, 0.0), 1.0) is None
        assert detector.serving_rsu("v") == "r0"


class TestSimulateHandovers:
    def test_highway_end_to_end(self):
        net = straight_highway(5000.0, num_junctions=11, speed_limit_mps=25.0)
        rsus = deploy_rsus_along_highway(5000.0, spacing_m=1000.0, coverage_radius_m=700.0)
        agents = [RouteFollower("v0", net, [f"j{k}" for k in range(11)])]
        result = simulate_handovers(agents, rsus, duration_s=220.0)
        # 6 RSUs along the road -> 1 attach + 5 handovers.
        assert len(result.events) == 6
        assert len(result.migrations) == 5
        assert len(result.migrations_of("v0")) == 5

    def test_traces_sampled_per_tick(self):
        net = straight_highway(1000.0, num_junctions=2, speed_limit_mps=10.0)
        rsus = deploy_rsus_along_highway(1000.0)
        agents = [RouteFollower("v0", net, ["j0", "j1"])]
        result = simulate_handovers(agents, rsus, duration_s=10.0, tick_s=1.0)
        assert len(result.traces["v0"].points) == 11  # t=0 plus 10 ticks

    def test_migration_events_ordered_in_time(self):
        net = straight_highway(5000.0, num_junctions=11, speed_limit_mps=25.0)
        rsus = deploy_rsus_along_highway(5000.0)
        agents = [
            RouteFollower("v0", net, [f"j{k}" for k in range(11)]),
            RouteFollower("v1", net, [f"j{k}" for k in range(11)], speed_factor=0.7),
        ]
        result = simulate_handovers(agents, rsus, duration_s=300.0)
        times = [e.time_s for e in result.events]
        assert times == sorted(times)

    def test_deployment_covers_road(self):
        rsus = deploy_rsus_along_highway(5000.0, spacing_m=1000.0, coverage_radius_m=700.0)
        cov = CoverageMap(rsus)
        samples = [(float(x), 0.0) for x in np.linspace(0.0, 5000.0, 200)]
        assert cov.coverage_holes(samples) == []

    def test_empty_agents_rejected(self):
        rsus = deploy_rsus_along_highway(1000.0)
        with pytest.raises(MobilityError):
            simulate_handovers([], rsus, duration_s=10.0)
