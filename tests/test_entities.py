"""Entity tests: VT payloads/blocks, RSUs, the MSP ledger, populations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.entities.msp import MetaverseServiceProvider
from repro.entities.rsu import EdgeServer, RoadsideUnit
from repro.entities.vmu import (
    VmuProfile,
    paper_fig2_population,
    sample_population,
    uniform_population,
)
from repro.entities.vt import VehicularTwin, VtPayload
from repro.errors import ConfigurationError, MigrationError


class TestVtPayload:
    def test_total(self):
        payload = VtPayload(config_mb=10.0, memory_mb=80.0, realtime_mb=10.0)
        assert payload.total_mb == 100.0

    def test_with_total_default_split(self):
        payload = VtPayload.with_total(200.0)
        assert payload.memory_mb == pytest.approx(160.0)
        assert payload.config_mb == pytest.approx(20.0)
        assert payload.total_mb == pytest.approx(200.0)

    def test_with_total_bad_fractions(self):
        with pytest.raises(ValueError):
            VtPayload.with_total(100.0, memory_fraction=0.9, config_fraction=0.2)

    def test_negative_component_rejected(self):
        with pytest.raises(ConfigurationError):
            VtPayload(config_mb=-1.0, memory_mb=0.0, realtime_mb=0.0)

    @given(st.floats(min_value=1.0, max_value=1e4))
    def test_with_total_conserves(self, total):
        assert VtPayload.with_total(total).total_mb == pytest.approx(total)


class TestVehicularTwin:
    def _twin(self, total=100.0):
        return VehicularTwin(
            vt_id="vt:x", vmu_id="x", payload=VtPayload.with_total(total)
        )

    def test_data_size(self):
        assert self._twin(150.0).data_size_mb == pytest.approx(150.0)

    def test_blocks_conserve_size(self):
        twin = self._twin(123.0)
        blocks = twin.blocks(block_size_mb=7.0)
        assert sum(b.size_mb for b in blocks) == pytest.approx(123.0)

    def test_blocks_sequential(self):
        blocks = self._twin().blocks(10.0)
        assert [b.sequence for b in blocks] == list(range(len(blocks)))

    def test_blocks_respect_max_size(self):
        blocks = self._twin(100.0).blocks(8.0)
        assert all(b.size_mb <= 8.0 + 1e-12 for b in blocks)

    def test_blocks_ordered_by_kind(self):
        kinds = [b.kind for b in self._twin().blocks(5.0)]
        # config blocks come before memory blocks before realtime blocks
        assert kinds == sorted(
            kinds, key=lambda k: {"config": 0, "memory": 1, "realtime": 2}[k]
        )

    def test_record_migration(self):
        twin = self._twin()
        twin.record_migration("rsu-9")
        assert twin.host_rsu_id == "rsu-9"
        assert twin.migration_count == 1

    @given(st.floats(min_value=0.5, max_value=50.0))
    def test_blocks_conservation_property(self, block_size):
        twin = self._twin(217.0)
        blocks = twin.blocks(block_size)
        assert sum(b.size_mb for b in blocks) == pytest.approx(217.0)


class TestEdgeServerAndRsu:
    def test_admit_and_evict(self):
        edge = EdgeServer(storage_mb=100.0, compute_units=4.0)
        edge.admit(60.0)
        assert edge.free_storage_mb == pytest.approx(40.0)
        edge.evict(60.0)
        assert edge.free_storage_mb == pytest.approx(100.0)

    def test_storage_exhaustion(self):
        edge = EdgeServer(storage_mb=100.0, compute_units=4.0)
        with pytest.raises(MigrationError, match="storage"):
            edge.admit(150.0)

    def test_compute_exhaustion(self):
        edge = EdgeServer(storage_mb=1000.0, compute_units=1.0)
        edge.admit(1.0, compute=1.0)
        with pytest.raises(MigrationError, match="compute"):
            edge.admit(1.0, compute=0.5)

    def test_evict_never_negative(self):
        edge = EdgeServer(storage_mb=100.0, compute_units=4.0)
        edge.evict(50.0)
        assert edge.free_storage_mb == pytest.approx(100.0)

    def test_rsu_coverage(self):
        rsu = RoadsideUnit("r", position_m=(0.0, 0.0), coverage_radius_m=100.0)
        assert rsu.covers((60.0, 80.0))  # distance exactly 100
        assert not rsu.covers((60.0, 80.1))

    def test_rsu_distance(self):
        rsu = RoadsideUnit("r", position_m=(3.0, 0.0), coverage_radius_m=10.0)
        assert rsu.distance_to((0.0, 4.0)) == pytest.approx(5.0)

    def test_rsu_host_unhost(self):
        rsu = RoadsideUnit("r", position_m=(0.0, 0.0), coverage_radius_m=100.0)
        rsu.host("vt:1", 100.0)
        assert "vt:1" in rsu.hosted_vt_ids
        with pytest.raises(MigrationError):
            rsu.host("vt:1", 100.0)
        rsu.unhost("vt:1", 100.0)
        assert "vt:1" not in rsu.hosted_vt_ids

    def test_unhost_unknown_rejected(self):
        rsu = RoadsideUnit("r", position_m=(0.0, 0.0), coverage_radius_m=100.0)
        with pytest.raises(MigrationError):
            rsu.unhost("vt:ghost", 10.0)


class TestMsp:
    def test_ledger_accounting(self):
        msp = MetaverseServiceProvider(unit_cost=5.0, max_price=50.0)
        msp.record_sale("vmu-0", bandwidth=2.0, unit_price=25.0)
        msp.record_sale("vmu-1", bandwidth=1.0, unit_price=25.0)
        assert msp.total_bandwidth_sold == pytest.approx(3.0)
        assert msp.total_revenue == pytest.approx(75.0)
        assert msp.total_cost == pytest.approx(15.0)
        assert msp.profit == pytest.approx(60.0)  # Eq. (4)

    def test_clear_ledger(self):
        msp = MetaverseServiceProvider()
        msp.record_sale("a", 1.0, 10.0)
        msp.clear_ledger()
        assert msp.profit == 0.0

    def test_price_validation(self):
        msp = MetaverseServiceProvider(unit_cost=5.0, max_price=50.0)
        with pytest.raises(Exception):
            msp.record_sale("a", 1.0, 4.0)  # below cost
        with pytest.raises(Exception):
            msp.record_sale("a", 1.0, 51.0)  # above cap

    def test_clamp_price(self):
        msp = MetaverseServiceProvider(unit_cost=5.0, max_price=50.0)
        assert msp.clamp_price(1.0) == 5.0
        assert msp.clamp_price(99.0) == 50.0
        assert msp.clamp_price(20.0) == 20.0

    def test_cost_above_cap_rejected(self):
        with pytest.raises(ValueError):
            MetaverseServiceProvider(unit_cost=60.0, max_price=50.0)


class TestPopulations:
    def test_paper_fig2_population(self):
        vmus = paper_fig2_population()
        assert [v.data_size_mb for v in vmus] == [200.0, 100.0]
        assert [v.immersion_coef for v in vmus] == [5.0, 5.0]

    def test_data_units_conversion(self):
        assert paper_fig2_population()[0].data_units == 2.0

    def test_uniform_population(self):
        vmus = uniform_population(4)
        assert len(vmus) == 4
        assert all(v.data_size_mb == 100.0 for v in vmus)
        assert len({v.vmu_id for v in vmus}) == 4

    def test_sample_population_ranges(self):
        vmus = sample_population(50, seed=0)
        assert all(100.0 <= v.data_size_mb <= 300.0 for v in vmus)
        assert all(5.0 <= v.immersion_coef <= 20.0 for v in vmus)

    def test_sample_population_deterministic(self):
        a = sample_population(5, seed=3)
        b = sample_population(5, seed=3)
        assert [(v.data_size_mb, v.immersion_coef) for v in a] == [
            (v.data_size_mb, v.immersion_coef) for v in b
        ]

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            sample_population(0)
        with pytest.raises(ValueError):
            uniform_population(0)

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            VmuProfile("x", data_size_mb=0.0, immersion_coef=5.0)
        with pytest.raises(ConfigurationError):
            VmuProfile("x", data_size_mb=100.0, immersion_coef=-1.0)
