"""Dtype discipline on the equilibrium hot path.

City-scale solves stream millions of elements per chunk; a silent upcast
(float32 input widening mid-pipeline), a silent *downcast*, or a hidden
non-contiguous view would change memory behaviour — and potentially bits —
without failing any numeric test. This suite walks every array the hot
path returns (``core/utilities``, ``channel/ofdma``, ``game/solvers``,
``core/marketstack``) and pins float64 dtype and C-contiguity end to end.
"""

import numpy as np
import pytest

from repro.channel.ofdma import proportional_rationing_stacked
from repro.core import MarketStack
from repro.core.utilities import (
    follower_best_response_stacked,
    msp_utilities_stacked,
    vmu_utilities_stacked,
)
from repro.game.solvers import grid_then_golden_batch, uniform_price_grid

from test_core_equilibria_stacked import infeasible_market, random_markets


def assert_hot(array, *, dtype=np.float64):
    """The hot-path array contract: exact dtype, C-contiguous."""
    array = np.asarray(array)
    assert array.dtype == dtype, f"expected {dtype}, got {array.dtype}"
    assert array.flags["C_CONTIGUOUS"]


@pytest.fixture(scope="module")
def stack():
    markets = random_markets(7, root_seed=3, max_vmus=5)
    markets.insert(2, infeasible_market())
    return MarketStack(markets)


class TestStackedUtilitiesDtype:
    """float32 (or int) inputs must come out float64 — the stacked helpers
    normalise via ``asarray(..., dtype=float)`` at the boundary."""

    def test_follower_best_response_upcasts(self):
        alphas = np.full((3, 2), 8.0, dtype=np.float32)
        data = np.full((3, 2), 2.0, dtype=np.float32)
        prices = np.full(3, 10.0, dtype=np.float32)
        se = np.full(3, 40.0, dtype=np.float32)
        assert_hot(follower_best_response_stacked(alphas, data, prices, se))
        grid = np.full((3, 4), 10.0, dtype=np.float32)
        assert_hot(follower_best_response_stacked(alphas, data, grid, se))

    def test_vmu_utilities_upcast(self):
        alphas = np.full((2, 3), 8, dtype=np.int64)
        data = np.full((2, 3), 2, dtype=np.int64)
        bands = np.full((2, 3), 0.1, dtype=np.float32)
        prices = np.full(2, 10, dtype=np.int64)
        se = np.full(2, 40, dtype=np.int64)
        assert_hot(vmu_utilities_stacked(alphas, data, bands, prices, se))

    def test_msp_utilities_upcast(self):
        prices = np.full(4, 10.0, dtype=np.float32)
        costs = np.full(4, 5, dtype=np.int64)
        totals = np.full(4, 1.0, dtype=np.float32)
        assert_hot(msp_utilities_stacked(prices, costs, totals))

    def test_rationing_upcasts(self):
        demands = np.full((3, 2), 1.0, dtype=np.float32)
        caps = np.full(3, 1, dtype=np.int64)
        assert_hot(proportional_rationing_stacked(demands, caps))


class TestSolverDtype:
    def test_uniform_price_grid(self):
        assert_hot(uniform_price_grid(5.0, 50.0, 16))
        assert_hot(uniform_price_grid(np.float32(5.0), np.float32(50.0), 16))

    def test_grid_then_golden_batch(self):
        peaks = np.array([3.0, 7.0], dtype=np.float32)

        def objective(x):
            x = np.asarray(x, dtype=np.float64)
            p = peaks[:, np.newaxis] if x.ndim == 2 else peaks
            return -((x - p) ** 2)

        lows = np.array([1, 1], dtype=np.int64)
        highs = np.array([10, 10], dtype=np.int64)
        best, values = grid_then_golden_batch(objective, lows, highs)
        assert_hot(best)
        assert_hot(values)


class TestMarketStackDtype:
    def test_stacked_parameter_matrices(self, stack):
        assert_hot(stack.immersion_coefs)
        assert_hot(stack.data_units)
        assert_hot(stack.spectral_efficiencies)
        assert_hot(stack.unit_costs)
        assert_hot(stack.max_prices)
        assert_hot(stack.capacities_natural)
        # int64 everywhere (the platform-default C long is int32 on some
        # targets, which would silently change payload hashes)
        assert_hot(stack.counts, dtype=np.int64)
        assert_hot(stack.mask, dtype=np.bool_)

    def test_candidate_matrix(self, stack):
        candidates, feasible = stack._candidate_matrix()
        assert_hot(candidates)
        assert_hot(feasible, dtype=np.bool_)

    def test_vector_outcome_fields(self, stack):
        outcome = stack.outcomes_stacked(
            np.linspace(10.0, 20.0, stack.num_markets)
        )
        for name in ("prices", "demands", "allocations", "msp_utilities",
                     "vmu_utilities"):
            assert_hot(getattr(outcome, name))
        assert_hot(outcome.capacity_binding, dtype=np.bool_)
        assert_hot(outcome.total_allocated)
        assert_hot(outcome.total_vmu_utilities())

    def test_grid_outcome_fields(self, stack):
        landscape = stack.leader_landscapes(grid_points=16)
        for name in ("prices", "demands", "allocations", "msp_utilities",
                     "vmu_utilities"):
            assert_hot(getattr(landscape, name))
        assert_hot(landscape.capacity_binding, dtype=np.bool_)

    def test_float32_price_input_solves_in_float64(self, stack):
        prices = np.linspace(10.0, 20.0, stack.num_markets, dtype=np.float32)
        outcome = stack.outcomes_stacked(prices)
        assert_hot(outcome.prices)
        assert_hot(outcome.demands)

    @pytest.mark.parametrize("chunked", [False, True])
    def test_equilibria_fields(self, chunked):
        markets = random_markets(6, root_seed=3, max_vmus=5)
        markets.insert(2, infeasible_market())
        stack = MarketStack(markets)
        solved = (
            stack.equilibria_stacked_chunked(chunk_size=2)
            if chunked
            else stack.equilibria_stacked()
        )
        for name in ("prices", "demands", "msp_utilities", "vmu_utilities",
                     "unit_costs"):
            assert_hot(getattr(solved, name))
        for name in ("capacity_binding", "price_cap_binding", "feasible",
                     "mask"):
            assert_hot(getattr(solved, name), dtype=np.bool_)
        assert_hot(solved.counts, dtype=np.int64)
        assert_hot(solved.total_bandwidths)
