"""Churning-environment tests: population dynamics and demand coupling."""

import numpy as np
import pytest

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import uniform_population
from repro.env.nonstationary import ChurnConfig, ChurningMigrationEnv
from repro.errors import EnvironmentError_


@pytest.fixture
def market():
    return StackelbergMarket(uniform_population(4))


def make_env(market, **kwargs):
    defaults = dict(history_length=3, rounds_per_episode=20, seed=0)
    defaults.update(kwargs)
    return ChurningMigrationEnv(market, **defaults)


class TestChurnConfig:
    def test_stationary_presence(self):
        churn = ChurnConfig(leave_probability=0.1, return_probability=0.3)
        assert churn.stationary_presence == pytest.approx(0.75)

    def test_no_churn_always_present(self):
        churn = ChurnConfig(leave_probability=0.0, return_probability=0.0)
        assert churn.stationary_presence == 1.0

    def test_validation(self):
        with pytest.raises(Exception):
            ChurnConfig(leave_probability=1.5)
        with pytest.raises(EnvironmentError_):
            ChurnConfig(min_active=0)


class TestChurningEnv:
    def test_observation_layout_matches_stationary(self, market):
        env = make_env(market)
        assert env.observation_dim == 3 * 5
        assert env.reset().shape == (15,)

    def test_population_churns(self, market):
        env = make_env(
            market,
            churn=ChurnConfig(leave_probability=0.3, return_probability=0.3),
        )
        env.reset()
        counts = set()
        for _ in range(20):
            _, _, done, info = env.step(25.0)
            counts.add(info["active_count"])
        assert len(counts) > 1  # the active population actually moved

    def test_min_active_enforced(self, market):
        env = make_env(
            market,
            churn=ChurnConfig(
                leave_probability=1.0, return_probability=0.0, min_active=2
            ),
        )
        env.reset()
        for _ in range(10):
            _, _, _, info = env.step(25.0)
            assert info["active_count"] >= 2

    def test_min_active_cannot_exceed_population(self, market):
        with pytest.raises(EnvironmentError_, match="min_active"):
            make_env(market, churn=ChurnConfig(min_active=10))

    def test_absent_vmus_demand_nothing(self, market):
        env = make_env(
            market,
            churn=ChurnConfig(leave_probability=0.5, return_probability=0.1),
        )
        env.reset()
        for _ in range(15):
            _, _, _, info = env.step(25.0)
            absent = ~env.active_mask
            assert np.all(info["allocations"][absent] == 0.0)

    def test_utility_scales_with_active_count(self, market):
        """Fewer active VMUs -> less demand -> lower MSP utility."""
        env = make_env(
            market,
            churn=ChurnConfig(leave_probability=0.4, return_probability=0.2),
        )
        env.reset()
        by_count: dict[int, list[float]] = {}
        for _ in range(20):
            _, _, _, info = env.step(25.0)
            by_count.setdefault(info["active_count"], []).append(
                info["msp_utility"]
            )
        counts = sorted(by_count)
        if len(counts) >= 2:
            assert np.mean(by_count[counts[0]]) < np.mean(by_count[counts[-1]])

    def test_no_churn_matches_stationary_market(self, market):
        env = make_env(
            market,
            churn=ChurnConfig(leave_probability=0.0, return_probability=0.0),
        )
        env.reset()
        _, _, _, info = env.step(25.0)
        outcome = market.round_outcome(25.0)
        assert info["msp_utility"] == pytest.approx(outcome.msp_utility)

    def test_lifecycle_errors(self, market):
        env = make_env(market, rounds_per_episode=1)
        with pytest.raises(EnvironmentError_):
            env.step(25.0)
        env.reset()
        env.step(25.0)
        with pytest.raises(EnvironmentError_):
            env.step(25.0)

    def test_deterministic_given_seed(self, market):
        def run(seed):
            env = make_env(market, seed=seed)
            env.reset()
            return [env.step(25.0)[3]["active_count"] for _ in range(10)]

        assert run(5) == run(5)
        # different seeds -> (almost surely) different churn paths
        assert run(5) != run(6) or True  # tolerate rare collision

    def test_trains_with_ppo(self, market):
        """The PPO stack runs end-to-end on the churning env."""
        from repro.drl import PPOConfig, TrainerConfig, train_pricing_agent

        env = make_env(market, rounds_per_episode=10)
        _, result, _ = train_pricing_agent(
            env,
            trainer_config=TrainerConfig(
                num_episodes=2, update_interval=5, update_epochs=1,
                batch_size=5, gamma=0.0,
            ),
            ppo_config=PPOConfig(learning_rate=1e-3),
            seed=0,
        )
        assert result.num_episodes == 2
