"""AoTM metric and immersion-function tests (Eqs. 1-2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.link import paper_link
from repro.core.aotm import aotm, aotm_mb, bandwidth_for_target_aotm, freshness_gain
from repro.core.immersion import immersion, immersion_from_bandwidth, marginal_immersion
from repro.errors import ConfigurationError
from repro.game.analysis import numerical_derivative

SE = paper_link().spectral_efficiency


class TestAotm:
    def test_eq1_value(self):
        # A = D / (b SE).
        assert aotm(2.0, 0.5, SE) == pytest.approx(2.0 / (0.5 * SE))

    def test_zero_bandwidth_infinite(self):
        assert aotm(1.0, 0.0, SE) == math.inf

    def test_zero_data_zero_aotm(self):
        assert aotm(0.0, 1.0, SE) == 0.0

    def test_aotm_mb_uses_100mb_units(self):
        assert aotm_mb(200.0, 0.5) == pytest.approx(aotm(2.0, 0.5, SE))

    def test_aotm_mb_custom_link(self):
        far = paper_link().with_distance(1000.0)
        assert aotm_mb(100.0, 0.5, link=far) > aotm_mb(100.0, 0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            aotm(-1.0, 1.0, SE)
        with pytest.raises(ConfigurationError):
            aotm(1.0, -1.0, SE)
        with pytest.raises(ConfigurationError):
            aotm(1.0, 1.0, 0.0)

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.01, max_value=10.0),
    )
    def test_monotone(self, data, bandwidth):
        # More data -> staler; more bandwidth -> fresher.
        assert aotm(data * 2.0, bandwidth, SE) > aotm(data, bandwidth, SE)
        assert aotm(data, bandwidth * 2.0, SE) < aotm(data, bandwidth, SE)

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.01, max_value=5.0),
    )
    def test_bandwidth_inversion_round_trip(self, data, target):
        bandwidth = bandwidth_for_target_aotm(data, target, SE)
        assert aotm(data, bandwidth, SE) == pytest.approx(target, rel=1e-12)


class TestFreshnessGain:
    def test_zero_at_infinite_age(self):
        assert freshness_gain(math.inf) == 0.0

    def test_ln2_at_unit_age(self):
        assert freshness_gain(1.0) == pytest.approx(math.log(2.0))

    def test_monotone_decreasing(self):
        assert freshness_gain(0.5) > freshness_gain(1.0) > freshness_gain(2.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            freshness_gain(0.0)


class TestImmersion:
    def test_scales_with_alpha(self):
        assert immersion(10.0, 1.0) == pytest.approx(2.0 * immersion(5.0, 1.0))

    def test_from_bandwidth_closed_form(self):
        # G(b) = α ln(1 + b SE / D).
        expected = 5.0 * math.log1p(0.5 * SE / 2.0)
        assert immersion_from_bandwidth(5.0, 2.0, 0.5, SE) == pytest.approx(expected)

    def test_zero_bandwidth_zero_immersion(self):
        assert immersion_from_bandwidth(5.0, 2.0, 0.0, SE) == 0.0

    def test_marginal_is_derivative(self):
        for b in (0.05, 0.2, 1.0):
            numeric = numerical_derivative(
                lambda x: immersion_from_bandwidth(5.0, 2.0, x, SE), b
            )
            analytic = marginal_immersion(5.0, 2.0, b, SE)
            assert analytic == pytest.approx(numeric, rel=1e-5)

    def test_marginal_decreasing(self):
        # Diminishing returns: d^2 G / db^2 < 0.
        m1 = marginal_immersion(5.0, 2.0, 0.1, SE)
        m2 = marginal_immersion(5.0, 2.0, 0.5, SE)
        assert m2 < m1

    @given(
        st.floats(min_value=1.0, max_value=30.0),
        st.floats(min_value=0.5, max_value=5.0),
        st.floats(min_value=0.001, max_value=5.0),
    )
    def test_immersion_positive_and_increasing(self, alpha, data, bandwidth):
        low = immersion_from_bandwidth(alpha, data, bandwidth, SE)
        high = immersion_from_bandwidth(alpha, data, bandwidth * 1.5, SE)
        assert 0.0 < low < high
