"""MarketStack tests: the stacked solve must equal per-market scalar solves.

The acceptance criterion of the market-stack axis: solving ``M`` different
markets at ``M`` different prices (or ``M`` whole price grids) in one
stacked pass reproduces the per-market solves **bitwise** — including
ragged populations, which the stack pads and masks.
"""

import numpy as np
import pytest

from repro.core import MarketStack
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import (
    paper_fig2_population,
    sample_population,
    uniform_population,
)
from repro.errors import ConfigurationError


def random_markets(count, *, root_seed=0, max_vmus=11):
    """Heterogeneous markets: random (ragged) populations, costs, caps."""
    rng = np.random.default_rng(root_seed)
    markets = []
    for _ in range(count):
        population = sample_population(
            int(rng.integers(1, max_vmus + 1)),
            seed=int(rng.integers(0, 2**31)),
        )
        config = MarketConfig(
            unit_cost=float(rng.uniform(3.0, 9.0)),
            max_price=float(rng.uniform(30.0, 60.0)),
            max_bandwidth=float(rng.uniform(20.0, 60.0)),
            enforce_capacity=bool(rng.integers(0, 2)),
        )
        markets.append(StackelbergMarket(population, config=config))
    return markets


def random_prices(markets, rng):
    return np.array(
        [
            float(rng.uniform(m.config.unit_cost, m.config.max_price))
            for m in markets
        ]
    )


class TestStackedEqualsScalar:
    def test_50_random_ragged_markets_match_scalar_solves_bitwise(self):
        """Property: across ~50 random heterogeneous markets (ragged N,
        mixed capacity enforcement) the stacked solve equals per-market
        scalar round outcomes bitwise."""
        markets = random_markets(50, root_seed=7)
        stack = MarketStack(markets)
        assert stack.num_markets == 50
        rng = np.random.default_rng(123)
        for _ in range(4):
            prices = random_prices(markets, rng)
            stacked = stack.outcomes_stacked(prices)
            for m, market in enumerate(markets):
                reference = market.round_outcome(float(prices[m]))
                row = stacked.row(m)
                assert row.price == reference.price
                assert (row.demands == reference.demands).all()
                assert (row.allocations == reference.allocations).all()
                assert (row.vmu_utilities == reference.vmu_utilities).all()
                assert row.msp_utility == reference.msp_utility
                assert row.capacity_binding == reference.capacity_binding

    def test_price_grid_form_matches_per_market_batches_bitwise(self):
        markets = random_markets(12, root_seed=3)
        stack = MarketStack(markets)
        grids = np.stack(
            [
                np.linspace(m.config.unit_cost, m.config.max_price, 33)
                for m in markets
            ]
        )
        stacked = stack.outcomes_stacked(grids)
        assert stacked.has_price_grid
        for m, market in enumerate(markets):
            reference = market.outcomes_batch(grids[m])
            rows = stacked.market_rows(m)
            assert (rows.prices == reference.prices).all()
            assert (rows.demands == reference.demands).all()
            assert (rows.allocations == reference.allocations).all()
            assert (rows.msp_utilities == reference.msp_utilities).all()
            assert (rows.vmu_utilities == reference.vmu_utilities).all()
            assert (rows.capacity_binding == reference.capacity_binding).all()

    def test_single_market_stack_is_outcomes_batch(self):
        """M = 1 broadcast case: the stack reproduces the market's own
        price-batch evaluation (they share one code path)."""
        market = StackelbergMarket(paper_fig2_population())
        stack = MarketStack([market])
        grid = np.linspace(5.0, 50.0, 17)
        stacked = stack.outcomes_stacked(grid[np.newaxis, :])
        reference = market.outcomes_batch(grid)
        assert (stacked.market_rows(0).msp_utilities == reference.msp_utilities).all()
        assert (stacked.market_rows(0).allocations == reference.allocations).all()

    def test_padding_never_leaks_into_outcomes(self):
        """Padded population slots stay exactly zero everywhere."""
        markets = [
            StackelbergMarket(uniform_population(1)),
            StackelbergMarket(uniform_population(6)),
        ]
        stack = MarketStack(markets)
        stacked = stack.outcomes_stacked(np.array([20.0, 20.0]))
        assert stack.max_vmus == 6
        assert (stacked.counts == [1, 6]).all()
        padded = ~stacked.mask
        assert (stacked.demands[padded] == 0.0).all()
        assert (stacked.allocations[padded] == 0.0).all()
        assert (stacked.vmu_utilities[padded] == 0.0).all()


class TestMarketStackApi:
    def test_parameter_arrays_and_accessors(self):
        markets = random_markets(5, root_seed=1)
        stack = MarketStack.from_markets(markets)
        assert len(stack) == 5
        assert stack.market(2) is markets[2]
        assert stack.markets == tuple(markets)
        assert stack.immersion_coefs.shape == (5, stack.max_vmus)
        assert stack.data_units.shape == (5, stack.max_vmus)
        assert stack.unit_costs.shape == (5,)
        assert stack.max_prices.shape == (5,)
        assert stack.capacities_natural.shape == (5,)
        assert stack.spectral_efficiencies.shape == (5,)
        assert (stack.mask.sum(axis=1) == stack.counts).all()

    def test_leader_landscapes_match_per_market_landscapes(self):
        markets = random_markets(6, root_seed=9)
        stack = MarketStack(markets)
        stacked = stack.leader_landscapes(grid_points=64)
        for m, market in enumerate(markets):
            reference = market.leader_landscape(grid_points=64)
            assert (
                stacked.market_rows(m).msp_utilities
                == reference.msp_utilities
            ).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MarketStack([])
        stack = MarketStack(random_markets(3, root_seed=4))
        with pytest.raises(ConfigurationError):
            stack.outcomes_stacked(np.array([20.0, 20.0]))  # wrong M
        with pytest.raises(ConfigurationError):
            stack.outcomes_stacked(np.array([20.0, -1.0, 20.0]))
        with pytest.raises(ConfigurationError):
            stack.outcomes_stacked(np.array([20.0, np.nan, 20.0]))
        with pytest.raises(ConfigurationError):
            stack.outcomes_stacked(np.zeros((3, 2, 2)))

    def test_row_and_market_rows_guard_their_shapes(self):
        stack = MarketStack(random_markets(2, root_seed=5))
        vector = stack.outcomes_stacked(np.array([20.0, 21.0]))
        grid = stack.outcomes_stacked(np.full((2, 3), 20.0))
        with pytest.raises(ConfigurationError):
            vector.market_rows(0)
        with pytest.raises(ConfigurationError):
            grid.row(0)
