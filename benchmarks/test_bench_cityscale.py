"""City-scale chunked solve: markets/second and peak-RSS evidence.

Builds RSU-grid stacks via ``MarketStack.from_grid`` at M ∈ {64, 1000,
10000} and times ``equilibria_stacked_chunked`` under a 32 MiB scratch
budget, recording throughput (markets/second), the ``tracemalloc`` peak
around the solve (which sees numpy's allocations — construction is
excluded), and the process ``ru_maxrss`` high-water mark (report-only:
it never shrinks, so only the budget-bounded traced peak is asserted).
Results land in ``benchmarks/results/cityscale.txt``.

Acceptance (ISSUE 6): the M = 10000 solve completes, its traced peak
stays inside the chunk budget, and throughput clears 50 markets/second.
"""

import resource
import time
import tracemalloc

import pytest

from repro.core import MarketStack
from repro.utils.tables import Table

pytestmark = pytest.mark.slow

MARKET_COUNTS = (64, 1000, 10000)
CHUNK_BYTES = 32 * 1024 * 1024
MIN_MARKETS_PER_SECOND = 50.0


def solve_profile(num_markets):
    """Throughput + memory profile of one chunked city solve."""
    stack = MarketStack.from_grid(num_markets, seed=7)
    chunk = stack.resolve_chunk_size(chunk_bytes=CHUNK_BYTES)

    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        start = time.perf_counter()
        solved = stack.equilibria_stacked_chunked(chunk_bytes=CHUNK_BYTES)
        elapsed = time.perf_counter() - start
        _, traced_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    return {
        "markets": num_markets,
        "chunk_markets": chunk,
        "feasible": int(solved.feasible.sum()),
        "markets_per_s": num_markets / elapsed,
        "solve_s": elapsed,
        "traced_peak_mb": traced_peak / 1e6,
        "ru_maxrss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1e3,
    }


def test_cityscale_throughput_and_memory(record_table):
    table = Table(
        headers=(
            "markets",
            "chunk",
            "feasible",
            "markets_per_s",
            "solve_s",
            "traced_peak_mb",
            "ru_maxrss_mb",
        ),
        title=f"City-scale chunked solve (chunk budget {CHUNK_BYTES >> 20} MiB)",
    )
    profiles = {}
    for count in MARKET_COUNTS:
        profile = solve_profile(count)
        profiles[count] = profile
        table.add_row(*(profile[key] for key in (
            "markets", "chunk_markets", "feasible", "markets_per_s",
            "solve_s", "traced_peak_mb", "ru_maxrss_mb",
        )))
    record_table("cityscale", table)

    largest = profiles[MARKET_COUNTS[-1]]
    assert largest["feasible"] > 0
    assert largest["markets_per_s"] >= MIN_MARKETS_PER_SECOND
    # The whole point of chunking: a 10k-market city solves inside the
    # same scratch budget a 1k-market city does.
    assert largest["traced_peak_mb"] * 1e6 <= CHUNK_BYTES
