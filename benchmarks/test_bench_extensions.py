"""E10/E11 — extension benchmarks: multi-MSP competition, welfare, and
multi-seed statistical comparison.

Not paper figures; these regenerate the extension results recorded in
EXPERIMENTS.md and guard their qualitative claims.
"""

import pytest

from repro.core.multimsp import MspSpec, MultiMspMarket
from repro.core.stackelberg import StackelbergMarket
from repro.core.welfare import welfare_report
from repro.entities.vmu import paper_fig2_population
from repro.experiments import ExperimentConfig, run_multiseed_comparison
from repro.utils.tables import Table

pytestmark = pytest.mark.slow


def test_multi_msp_competition(benchmark, record_table):
    """Monopoly -> duopoly: Bertrand collapse of the equilibrium price."""
    vmus = paper_fig2_population()

    def run():
        monopoly = StackelbergMarket(vmus).equilibrium()
        duopoly = MultiMspMarket(
            vmus,
            [
                MspSpec("msp-a", unit_cost=5.0, capacity=10.0),
                MspSpec("msp-b", unit_cost=5.0, capacity=10.0),
            ],
        ).equilibrium(initial_prices=[25.0, 30.0])
        return monopoly, duopoly

    monopoly, duopoly = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        headers=("market", "price", "total provider profit"),
        title="E10 — monopoly vs Bertrand duopoly",
    )
    table.add_row("monopoly", monopoly.price, monopoly.msp_utility)
    table.add_row(
        "duopoly", float(duopoly.prices.min()), float(duopoly.msp_utilities.sum())
    )
    record_table("ext_multimsp", table)

    assert duopoly.converged
    assert float(duopoly.prices.min()) < 0.3 * monopoly.price
    assert float(duopoly.msp_utilities.sum()) < 0.1 * monopoly.msp_utility


def test_welfare_analysis(benchmark, record_table):
    """Monopoly pricing burns welfare relative to the planner."""
    market = StackelbergMarket(paper_fig2_population())
    report = benchmark.pedantic(
        lambda: welfare_report(market), rounds=1, iterations=1
    )
    table = Table(
        headers=("quantity", "value"),
        title="E10 — welfare decomposition (paper's 2-VMU market)",
    )
    table.add_row("monopoly price", report.monopoly_price)
    table.add_row("planner price", report.planner_price)
    table.add_row("monopoly welfare", report.monopoly_welfare)
    table.add_row("planner welfare", report.planner_welfare)
    table.add_row("deadweight loss", report.deadweight_loss)
    table.add_row("efficiency", report.efficiency)
    record_table("ext_welfare", table)

    assert report.deadweight_loss > 0.0
    assert report.planner_price < report.monopoly_price
    assert 0.0 < report.efficiency < 1.0


def test_multiseed_drl_vs_random(benchmark, record_table):
    """DRL beats random across seeds with statistical significance."""
    market = StackelbergMarket(paper_fig2_population())
    config = ExperimentConfig(
        num_episodes=60,
        rounds_per_episode=40,
        learning_rate=1e-3,
        gamma=0.0,
        reward_mode="utility",
        evaluation_rounds=40,
    )

    result = benchmark.pedantic(
        lambda: run_multiseed_comparison(
            market, config, seeds=(0, 1, 2), schemes=("drl", "random")
        ),
        rounds=1,
        iterations=1,
    )
    record_table("ext_multiseed", result.table())

    drl = result.stats("drl")
    random_ = result.stats("random")
    assert drl.mean > random_.mean
    assert result.significance("drl", "random") < 0.05
