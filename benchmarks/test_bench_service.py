"""Live pricing service: incremental vs cold re-solve under churn.

Serves micro-windows of 5 % churn (fading drift + VMU joins) and price
queries over city-grid stacks at M ∈ {64, 1000}, timing the incremental
dirty-row re-solve against a cold full ``equilibria_stacked`` of the same
mutated stack each window. The two are bitwise-equal by construction
(``tests/test_core_marketstack_live.py``), so the comparison is pure
work avoided: ~0.05·M rows solved instead of M.

Acceptance (ISSUE 7): incremental beats cold by ≥ 5× per window at both
sizes. Evidence — per-window solve times, p50/p99 query latency, QPS,
and peak RSS — lands in ``benchmarks/results/pricing_service.txt`` and
the machine-readable ``pricing_service.json``.
"""

import resource
import time

import numpy as np
import pytest

from repro.core import MarketStack
from repro.entities.vmu import VmuProfile
from repro.mobility.citygrid import CityGridSpec, city_markets
from repro.service import LivePricingService, Query
from repro.utils.tables import Table

pytestmark = pytest.mark.slow

MARKET_COUNTS = (64, 1000)
CHURN = 0.05
WINDOWS = {64: 10, 1000: 5}
QUERIES_PER_WINDOW = 50
MIN_SPEEDUP = 5.0


def churn_profile(num_markets):
    """Serve churn windows; time incremental vs cold solve per window."""
    spec = CityGridSpec.for_markets(num_markets, seed=7)
    service = LivePricingService(city_markets(spec))
    service.equilibria()  # cold start outside the timed windows
    rng = np.random.default_rng(num_markets)
    per_window = max(1, round(CHURN * num_markets))

    incremental_s = 0.0
    cold_s = 0.0
    windows = WINDOWS[num_markets]
    for window in range(windows):
        targets = rng.choice(num_markets, size=per_window, replace=False)
        for position, target in enumerate(targets):
            if position % 2 == 0:
                service.stack.set_fading_gain(
                    int(target), float(rng.uniform(0.2, 2.0))
                )
            else:
                service.stack.join(
                    int(target),
                    VmuProfile(
                        f"bench-{window}-{position}",
                        data_size_mb=float(rng.uniform(50.0, 400.0)),
                        immersion_coef=float(rng.uniform(1.0, 9.0)),
                    ),
                )
        start = time.perf_counter()
        live = service.equilibria()  # dirty-row sub-stack solve + splice
        incremental_s += time.perf_counter() - start

        cold_stack = MarketStack(list(service.stack.markets))
        start = time.perf_counter()
        cold = cold_stack.equilibria_stacked()
        cold_s += time.perf_counter() - start
        assert np.array_equal(live.prices, cold.prices, equal_nan=True)

        service.serve(
            [Query(int(i)) for i in rng.integers(0, num_markets, size=QUERIES_PER_WINDOW)]
        )

    stats = service.stats()
    return {
        "markets": num_markets,
        "windows": windows,
        "dirty_rows_per_window": per_window,
        "queries": stats.queries,
        "updates": stats.updates,
        "rows_resolved": service.stack.rows_resolved,
        "incremental_s_per_window": incremental_s / windows,
        "cold_s_per_window": cold_s / windows,
        "speedup": cold_s / incremental_s,
        "markets_per_s": num_markets * windows / cold_s,
        "qps": stats.qps,
        "p50_ms": stats.p50_ms,
        "p99_ms": stats.p99_ms,
        "ru_maxrss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1e3,
    }


def test_incremental_beats_cold_per_window(record_table, record_json):
    table = Table(
        headers=(
            "markets",
            "dirty/window",
            "incr_s/window",
            "cold_s/window",
            "speedup",
            "qps",
            "p50_ms",
            "p99_ms",
            "ru_maxrss_mb",
        ),
        title=f"Live pricing service — {CHURN:.0%} churn per window",
    )
    profiles = []
    for count in MARKET_COUNTS:
        profile = churn_profile(count)
        profiles.append(profile)
        table.add_row(*(profile[key] for key in (
            "markets", "dirty_rows_per_window", "incremental_s_per_window",
            "cold_s_per_window", "speedup", "qps", "p50_ms", "p99_ms",
            "ru_maxrss_mb",
        )))
    record_table("pricing_service", table)
    record_json(
        "pricing_service",
        {"benchmark": "pricing_service", "churn": CHURN, "profiles": profiles},
    )

    for profile in profiles:
        assert profile["speedup"] >= MIN_SPEEDUP, profile
        assert profile["p99_ms"] > 0.0
        assert profile["qps"] > 0.0
