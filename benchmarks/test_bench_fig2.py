"""E1/E2 — Fig. 2: convergence of the DRL-based incentive mechanism.

Fig. 2(a): the per-episode game return (count of Eq.-12 rewards) rises
toward the max round count K as the policy converges.
Fig. 2(b): the episode-best MSP utility converges to the Stackelberg
equilibrium utility.

Budget note (EXPERIMENTS.md): the paper trains E = 500 episodes of K = 100
rounds at lr = 1e-5; the bench uses 150 episodes at lr = 1e-3 with γ = 0
(the game is a contextual bandit), which converges to the same equilibrium
in ~20 s. Run ``python -m repro.experiments.run --figure fig2 --paper`` for
the full-budget version.
"""

import pytest
import numpy as np

from repro.experiments import ExperimentConfig, run_fig2
from repro.utils.tables import Table

pytestmark = pytest.mark.slow

FIG2A_CONFIG = ExperimentConfig(
    num_episodes=150,
    rounds_per_episode=100,
    learning_rate=1e-3,
    gamma=0.0,
    reward_mode="paper",
    entropy_coef=1e-3,
    seed=0,
)


def test_fig2_convergence(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_fig2(FIG2A_CONFIG), rounds=1, iterations=1
    )

    table = result.table(stride=15)
    summary = Table(
        headers=("metric", "early (first 10%)", "converged (last 10%)", "target"),
        title="Fig. 2 summary — DRL vs Stackelberg equilibrium",
    )
    early_count = max(1, len(result.episode_returns) // 10)
    summary.add_row(
        "episode return (a)",
        float(np.mean(result.episode_returns[:early_count])),
        result.converged_return,
        float(result.max_round),
    )
    summary.add_row(
        "best MSP utility (b)",
        float(np.mean(result.episode_best_utilities[:early_count])),
        result.converged_utility,
        result.equilibrium_utility,
    )
    record_table("fig2", table, summary)

    # Fig. 2(a): return converges toward the max round count.
    early_return = float(np.mean(result.episode_returns[:early_count]))
    assert result.converged_return > early_return
    assert result.converged_return > 0.8 * result.max_round
    # Fig. 2(b): the best utility matches the equilibrium within 1%.
    assert result.utility_gap < 0.01
