"""E9 — substrate benchmarks: performance and behaviour of the simulators.

These are not paper figures; they are regression benches for the
substrates the reproduction is built on:

- equilibrium-solver latency (it is called inside every env round);
- PPO update throughput (dominates training time);
- mobility simulation throughput (handover events per simulated minute);
- pre-copy vs stop-and-copy AoTM/downtime trade-off across dirty rates
  (the live-migration claim the paper's AoTM metric abstracts).
"""

import pytest
import numpy as np

from repro.core.stackelberg import StackelbergMarket
from repro.drl.buffer import RolloutBuffer
from repro.drl.policy import ActorCritic
from repro.drl.ppo import PPOAgent, PPOConfig
from repro.entities.vmu import paper_fig2_population, sample_population
from repro.entities.vt import VehicularTwin, VtPayload
from repro.migration.precopy import simulate_precopy, simulate_stop_and_copy
from repro.mobility.models import RandomWaypoint
from repro.mobility.road import grid_city
from repro.mobility.trace import deploy_rsus_along_highway, simulate_handovers
from repro.utils.tables import Table

pytestmark = pytest.mark.slow


def test_equilibrium_solver_speed(benchmark):
    market = StackelbergMarket(sample_population(6, seed=0))
    equilibrium = benchmark(market.equilibrium)
    assert equilibrium.msp_utility > 0.0


def test_market_round_speed(benchmark):
    market = StackelbergMarket(paper_fig2_population())
    outcome = benchmark(market.round_outcome, 25.0)
    assert outcome.msp_utility > 0.0


def test_ppo_update_speed(benchmark):
    agent = PPOAgent(ActorCritic(obs_dim=12, seed=0), PPOConfig(learning_rate=1e-3))
    rng = np.random.default_rng(0)
    buffer = RolloutBuffer(gamma=0.0)
    for _ in range(20):
        obs = rng.normal(size=12)
        raw, log_prob, value = agent.act(obs, seed=rng)
        buffer.add(obs, raw, float(rng.normal()), log_prob, value)
    buffer.finalize(0.0)
    batch = buffer.sample(20, seed=0)
    stats = benchmark(agent.update, batch)
    assert np.isfinite(stats.policy_loss)


def test_mobility_throughput(benchmark, record_table):
    """20 random-waypoint vehicles on a 5x5 grid city for 5 sim-minutes."""
    network = grid_city(5, 5, block_m=300.0)
    rsus = deploy_rsus_along_highway(
        1200.0, spacing_m=400.0, coverage_radius_m=650.0
    )

    def run():
        agents = [
            RandomWaypoint(f"veh-{i}", network, seed=i) for i in range(20)
        ]
        return simulate_handovers(agents, rsus, duration_s=300.0, tick_s=1.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        headers=("vehicles", "sim seconds", "events", "migrations"),
        title="E9 — mobility substrate throughput",
    )
    table.add_row(20, 300.0, len(result.events), len(result.migrations))
    record_table("substrate_mobility", table)
    assert len(result.events) >= 20  # everyone at least attaches


def test_precopy_vs_stop_and_copy(benchmark, record_table):
    """AoTM and downtime across dirty rates — the live-migration trade."""

    def run():
        table = Table(
            headers=(
                "dirty (MB/s)",
                "precopy AoTM (s)",
                "precopy downtime (s)",
                "stopcopy AoTM (s)",
                "stopcopy downtime (s)",
                "overhead x",
            ),
            title="E9 — pre-copy vs stop-and-copy (200 MB twin, 100 MB/s link)",
        )
        for dirty in (0.0, 10.0, 30.0, 60.0):
            twin = VehicularTwin(
                vt_id="vt:bench",
                vmu_id="bench",
                payload=VtPayload.with_total(200.0),
                dirty_rate_mb_s=dirty,
            )
            live = simulate_precopy(twin, 100.0)
            cold = simulate_stop_and_copy(twin, 100.0)
            table.add_row(
                dirty,
                live.total_time_s,
                live.downtime_s,
                cold.total_time_s,
                cold.downtime_s,
                live.overhead_ratio,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("substrate_precopy", table)
    downtimes = table.column("precopy downtime (s)")
    cold_downtimes = table.column("stopcopy downtime (s)")
    # Live migration always has (weakly) lower downtime; strictly lower
    # once memory dominates the payload.
    assert all(live < cold for live, cold in zip(downtimes, cold_downtimes))
