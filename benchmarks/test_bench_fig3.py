"""E3-E6 — Fig. 3: cost sweep (a, b) and population sweep (c, d).

Each bench regenerates the full series of one figure pair and asserts the
paper's qualitative shape:

- 3(a): MSP price rises with cost (anchors ~25 at C=5, ~34 at C=9); MSP
  utility falls; DRL tracks the equilibrium and beats random/greedy means.
- 3(b): total VMU utility and total purchased bandwidth fall with cost
  (anchors ~27.9 at C=6, ~23.4 at C=8 in market units).
- 3(c): MSP utility rises with N (7.03 at N=2 -> 20.35 at N=6); price flat
  while capacity is slack, then rising.
- 3(d): average bandwidth flat then falling; average VMU utility falls
  with competition.
"""

import pytest

from repro.experiments import ExperimentConfig, run_fig3_cost, run_fig3_vmus

pytestmark = pytest.mark.slow

QUICK = ExperimentConfig.quick()

# The two panels of each figure share one sweep (same training runs); the
# first bench to need a sweep pays for it inside its timer, the second
# reuses the cached result.
_CACHE: dict[str, object] = {}


def cost_sweep():
    if "cost" not in _CACHE:
        _CACHE["cost"] = run_fig3_cost(QUICK)
    return _CACHE["cost"]


def vmu_sweep():
    if "vmus" not in _CACHE:
        _CACHE["vmus"] = run_fig3_vmus(QUICK)
    return _CACHE["vmus"]


def test_fig3a_msp_vs_cost(benchmark, record_table):
    result = benchmark.pedantic(cost_sweep, rounds=1, iterations=1)
    record_table("fig3a", result.msp_table())

    eq_price = result.series("equilibrium", "mean_price")
    eq_utility = result.series("equilibrium", "mean_msp_utility")
    drl_utility = result.series("drl", "mean_msp_utility")
    random_utility = result.series("random", "mean_msp_utility")
    greedy_utility = result.series("greedy", "mean_msp_utility")

    # Paper anchors.
    assert eq_price[0] == pytest.approx(25.0, abs=0.5)
    assert eq_price[-1] == pytest.approx(34.0, abs=0.1)
    # Price strictly increasing, utility strictly decreasing in cost.
    assert all(a < b for a, b in zip(eq_price, eq_price[1:]))
    assert all(a > b for a, b in zip(eq_utility, eq_utility[1:]))
    # Scheme ordering at every cost: DRL within 5% of equilibrium and
    # above the random baseline; greedy sits between.
    for drl, eq, rnd, greedy in zip(
        drl_utility, eq_utility, random_utility, greedy_utility
    ):
        assert drl > rnd
        assert drl >= 0.95 * eq
        assert greedy > rnd


def test_fig3b_vmu_vs_cost(benchmark, record_table):
    result = benchmark.pedantic(cost_sweep, rounds=1, iterations=1)
    record_table("fig3b", result.vmu_table())

    bandwidth = result.series("equilibrium", "mean_total_bandwidth_market")
    vmu_utility = result.series("equilibrium", "mean_total_vmu_utility")

    # Paper anchors (market units): ~27.9 at C=6, ~23.4 at C=8.
    assert bandwidth[1] == pytest.approx(27.9, abs=0.5)
    assert bandwidth[3] == pytest.approx(23.4, abs=0.2)
    # Monotone declines with cost.
    assert all(a > b for a, b in zip(bandwidth, bandwidth[1:]))
    assert all(a > b for a, b in zip(vmu_utility, vmu_utility[1:]))


def test_fig3c_msp_vs_n(benchmark, record_table):
    result = benchmark.pedantic(vmu_sweep, rounds=1, iterations=1)
    record_table("fig3c", result.msp_table())

    eq_utility = result.series("equilibrium", "mean_msp_utility")
    eq_price = result.series("equilibrium", "mean_price")
    drl_utility = result.series("drl", "mean_msp_utility")

    # Paper anchors: 7.03 at N=2, 20.35 at N=6.
    assert eq_utility[1] == pytest.approx(7.03, abs=0.02)
    assert eq_utility[5] == pytest.approx(20.35, abs=0.1)
    # Utility strictly increasing with N.
    assert all(a < b for a, b in zip(eq_utility, eq_utility[1:]))
    # Price flat while capacity slack (N <= 3), then rising.
    assert eq_price[0] == pytest.approx(eq_price[2], rel=1e-6)
    assert eq_price[5] > eq_price[3] > eq_price[2]
    # DRL tracks the equilibrium across the sweep.
    for drl, eq in zip(drl_utility, eq_utility):
        assert drl >= 0.93 * eq


def test_fig3d_vmu_vs_n(benchmark, record_table):
    result = benchmark.pedantic(vmu_sweep, rounds=1, iterations=1)
    record_table("fig3d", result.vmu_table())

    avg_bandwidth = [
        total / count
        for total, count in zip(
            result.series("equilibrium", "mean_total_bandwidth_market"),
            result.counts,
        )
    ]
    avg_utility = [
        total / count
        for total, count in zip(
            result.series("equilibrium", "mean_total_vmu_utility"),
            result.counts,
        )
    ]
    # Average bandwidth flat then falling (capacity competition).
    assert avg_bandwidth[0] == pytest.approx(avg_bandwidth[2], rel=1e-6)
    assert avg_bandwidth[5] < avg_bandwidth[4] < avg_bandwidth[3]
    # Average VMU utility decreases from N=2 to N=6 (paper: -12.8%).
    assert avg_utility[5] < avg_utility[1]
