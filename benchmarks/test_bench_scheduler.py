"""Experiment scheduler: sharded fig3 DRL trainings, speedup evidence.

Times a Fig. 3 cost sweep's per-market DRL trainings executed three ways
and records the evidence in ``benchmarks/results/scheduler_speedup.txt``:

- **Sequential** — the historical in-process path (one market after the
  next).
- **Scheduled, multi-worker** — the same markets as ``market_scheme``
  jobs over a worker pool (the PR's fan-out path). Exact by construction:
  each job runs the identical seeded training, floats survive the JSON
  wire bitwise (pinned in ``tests/test_experiments_scheduler.py``).
- **Resumed from cache** — a second scheduled run against the same cache
  dir; every job is served from disk, no worker runs. This is the
  interrupted-run recovery path, and its time is pure cache-read
  overhead.
"""

import os
import time
from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, JobScheduler
from repro.experiments.fig3_cost import run_fig3_cost
from repro.utils.tables import Table

pytestmark = pytest.mark.slow

# ≥ 4 markets per the acceptance criteria; 6 matches the paper's sweep
# densities and gives the pool two rounds at 3 workers.
COSTS = (5.0, 5.8, 6.6, 7.4, 8.2, 9.0)
WORKERS = 3
SCHEMES = ("drl",)


def _evaluations(result):
    return {
        cost: {
            scheme: vars(evaluation)
            for scheme, evaluation in by_scheme.items()
        }
        for cost, by_scheme in result.evaluations.items()
    }


def test_scheduler_speedup(record_table, tmp_path):
    # The multiseed bench's reduced quick budget: heavy enough per market
    # (~seconds of DRL training) that fan-out dominates pool start-up,
    # light enough to keep the benchmark in tens of seconds.
    config = replace(ExperimentConfig.quick(), num_episodes=40)

    start = time.perf_counter()
    sequential = run_fig3_cost(config, costs=COSTS, schemes=SCHEMES)
    sequential_s = time.perf_counter() - start

    scheduler = JobScheduler(workers=WORKERS, cache_dir=tmp_path)
    start = time.perf_counter()
    scheduled = run_fig3_cost(
        config, costs=COSTS, schemes=SCHEMES, scheduler=scheduler
    )
    scheduled_s = time.perf_counter() - start
    # Sharding never changes data: bitwise-equal to the sequential sweep.
    assert _evaluations(scheduled) == _evaluations(sequential)
    assert scheduler.jobs_executed == len(COSTS)

    resumed_scheduler = JobScheduler(workers=WORKERS, cache_dir=tmp_path)
    start = time.perf_counter()
    resumed = run_fig3_cost(
        config, costs=COSTS, schemes=SCHEMES, scheduler=resumed_scheduler
    )
    resumed_s = time.perf_counter() - start
    # The resumed run is pure cache: same numbers, zero jobs executed.
    assert _evaluations(resumed) == _evaluations(sequential)
    assert resumed_scheduler.jobs_executed == 0
    assert resumed_scheduler.cache_hits == len(COSTS)

    # Fan-out speedup scales with the cores actually granted to the run
    # (a single-core box can at best break even), so record the budget
    # next to the measurement.
    cores = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count()
    )
    table = Table(
        headers=("path", "markets", "workers", "cores", "seconds", "speedup"),
        title="Scheduler — fig3 DRL trainings: sequential vs sharded vs resumed",
    )
    table.add_row("sequential", len(COSTS), 1, cores, sequential_s, 1.0)
    table.add_row(
        f"scheduled ({WORKERS} workers)",
        len(COSTS),
        WORKERS,
        cores,
        scheduled_s,
        sequential_s / scheduled_s,
    )
    table.add_row(
        "resumed from cache",
        len(COSTS),
        WORKERS,
        cores,
        resumed_s,
        sequential_s / resumed_s,
    )
    record_table("scheduler_speedup", table)

    # Resume must be dramatically cheaper than recomputing — that is the
    # point of the cache (the multi-worker speedup is recorded as
    # evidence but not asserted; it depends on the core budget).
    assert resumed_s < sequential_s / 5
