"""Shared benchmark fixtures.

Each figure bench runs its experiment exactly once (``benchmark.pedantic``
with one round — the experiments are minutes-scale, not microseconds), then
prints the paper-style table and writes it to ``benchmarks/results/`` so
the series survive pytest's output capture. Every recorded table is also
mirrored to ``<name>.json`` (title/headers/rows per table) so dashboards
and regression tooling read the numbers without parsing the text layout;
``record_json`` writes richer structured payloads (latency percentiles,
throughput, peak RSS) for benches whose evidence is not purely tabular.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def _table_payload(table) -> dict:
    return {
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
    }


@pytest.fixture
def record_table():
    """Returns a function that prints tables and persists them to disk —
    the text form to ``<name>.txt`` plus a machine-readable mirror
    (title/headers/rows per table) to ``<name>.json``."""

    def _record(name: str, *tables) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n\n".join(str(t) for t in tables)
        print(f"\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        payload = {
            "benchmark": name,
            "tables": [_table_payload(t) for t in tables],
        }
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    return _record


@pytest.fixture
def record_json():
    """Returns a function that persists a structured (JSON-serialisable)
    payload to ``benchmarks/results/<name>.json`` — for benches reporting
    non-tabular evidence (markets/s, p50/p99 latency, peak RSS)."""

    def _record(name: str, payload: dict) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    return _record
