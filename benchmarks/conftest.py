"""Shared benchmark fixtures.

Each figure bench runs its experiment exactly once (``benchmark.pedantic``
with one round — the experiments are minutes-scale, not microseconds), then
prints the paper-style table and writes it to ``benchmarks/results/`` so
the series survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Returns a function that prints a table and persists it to disk."""

    def _record(name: str, *tables) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n\n".join(str(t) for t in tables)
        print(f"\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record
