"""Market-stack axis and multiseed sharding: speedup evidence.

Times the two scale levers this PR adds and records the evidence in
``benchmarks/results/multiseed_speedup.txt``:

- **Stacked market solve** — a heterogeneous grid of ``M`` markets (ragged
  populations included), each evaluated on its own ``R``-point price grid,
  through one ``MarketStack.outcomes_stacked`` pass vs. ``M`` per-market
  ``outcomes_batch`` calls (which are themselves already vectorised over
  ``R`` — the baseline here is the *strong* one).
- **Sharded multiseed** — ``run_multiseed_comparison`` fanning its
  per-seed runs over worker processes vs. the sequential path.

Both comparisons are exact by construction (see
``tests/test_core_marketstack.py`` and
``tests/test_experiments_multiseed.py``), so the timing difference is pure
overhead removed, not a different computation.
"""

import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core import MarketStack
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import paper_fig2_population, sample_population
from repro.experiments import ExperimentConfig, run_multiseed_comparison
from repro.utils.tables import Table

pytestmark = pytest.mark.slow

NUM_MARKETS = 64
GRID_POINTS = 128
SEEDS = tuple(range(6))
SHARDS = 3


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def heterogeneous_grid(count: int) -> list[StackelbergMarket]:
    rng = np.random.default_rng(0)
    markets = []
    for _ in range(count):
        population = sample_population(
            int(rng.integers(1, 9)), seed=int(rng.integers(0, 2**31))
        )
        config = MarketConfig(
            unit_cost=float(rng.uniform(3.0, 9.0)),
            max_bandwidth=float(rng.uniform(20.0, 60.0)),
        )
        markets.append(StackelbergMarket(population, config=config))
    return markets


def stacked_solve_table() -> tuple[Table, float]:
    markets = heterogeneous_grid(NUM_MARKETS)
    stack = MarketStack(markets)
    grids = np.stack(
        [
            np.linspace(m.config.unit_cost, m.config.max_price, GRID_POINTS)
            for m in markets
        ]
    )

    stacked = best_of(lambda: stack.outcomes_stacked(grids), repeats=5)
    per_market = best_of(
        lambda: [m.outcomes_batch(grids[i]) for i, m in enumerate(markets)],
        repeats=5,
    )
    speedup = per_market / stacked

    table = Table(
        headers=("path", "markets", "grid_points", "best_millis", "speedup"),
        title="Market stack — stacked vs per-market grid evaluation",
    )
    table.add_row(
        "per-market (M batched solves)",
        NUM_MARKETS,
        GRID_POINTS,
        per_market * 1e3,
        1.0,
    )
    table.add_row(
        "stacked (one pass)", NUM_MARKETS, GRID_POINTS, stacked * 1e3, speedup
    )
    return table, speedup


def shard_table() -> tuple[Table, float]:
    market = StackelbergMarket(paper_fig2_population())
    # A reduced quick budget: heavy enough per seed (~2 s of DRL training)
    # that the process fan-out dominates worker start-up, light enough to
    # keep the benchmark in tens of seconds.
    config = replace(ExperimentConfig.quick(), num_episodes=40)
    kwargs = dict(seeds=SEEDS, schemes=("drl", "random"))

    start = time.perf_counter()
    sequential_result = run_multiseed_comparison(market, config, **kwargs)
    sequential = time.perf_counter() - start
    start = time.perf_counter()
    sharded_result = run_multiseed_comparison(
        market, config, shards=SHARDS, **kwargs
    )
    sharded = time.perf_counter() - start
    assert sharded_result == sequential_result  # sharding never changes data
    speedup = sequential / sharded

    # Shard speedup scales with the cores actually granted to the run (a
    # single-core box can at best break even), so record the budget next
    # to the measurement.
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    table = Table(
        headers=("path", "seeds", "shards", "cores", "seconds", "speedup"),
        title="Multiseed — process-sharded vs sequential",
    )
    table.add_row("sequential", len(SEEDS), 1, cores, sequential, 1.0)
    table.add_row(
        f"sharded ({SHARDS} processes)",
        len(SEEDS),
        SHARDS,
        cores,
        sharded,
        speedup,
    )
    return table, speedup


def test_multiseed_speedups(record_table):
    stacked_table, stacked_speedup = stacked_solve_table()
    sharded_table, shard_speedup = shard_table()
    record_table("multiseed_speedup", stacked_table, sharded_table)

    # Acceptance floor: the stacked pass must clearly beat M separate
    # (already-vectorised) solves — typically 2.5-3x, floor kept loose for
    # noisy shared runners. Shard speedup is recorded as evidence but not
    # asserted — it depends on the core budget (a 1-core box breaks even),
    # and exactness is already pinned above and in the test suite.
    assert stacked_speedup >= 1.5
