"""E7/E8 — ablations over the mechanism's design choices.

E7 compares the paper's binary Eq.-12 reward with the shaped per-round
utility reward: both must converge to the Stackelberg equilibrium (the
reward formulation is a training-speed choice, not an outcome choice).

E8 varies the observation history length L: with a stationary follower
population, even L = 1 suffices — quantifying how little of Eq. (11)'s
history the agent actually needs.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    run_history_ablation,
    run_reward_ablation,
)

pytestmark = pytest.mark.slow

ABLATION_CONFIG = ExperimentConfig(
    num_episodes=100,
    rounds_per_episode=50,
    learning_rate=1e-3,
    gamma=0.0,
    entropy_coef=1e-3,
    evaluation_rounds=50,
    seed=0,
    reward_mode="utility",  # run_reward_ablation overrides per mode
)


def test_reward_shaping_ablation(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_reward_ablation(ABLATION_CONFIG), rounds=1, iterations=1
    )
    record_table("ablation_reward", result.table())

    by_mode = {mode: evaluated for mode, _, evaluated in result.rows}
    # Both reward formulations find the equilibrium utility (within 2%).
    for mode, evaluated in by_mode.items():
        assert evaluated == pytest.approx(
            result.equilibrium_utility, rel=0.02
        ), f"reward mode {mode!r} failed to converge"


def test_history_length_ablation(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_history_ablation(ABLATION_CONFIG, lengths=(1, 2, 4, 8)),
        rounds=1,
        iterations=1,
    )
    record_table("ablation_history", result.table())

    for length, _, evaluated in result.rows:
        assert evaluated == pytest.approx(
            result.equilibrium_utility, rel=0.03
        ), f"history length {length} failed to converge"
