"""Training hot path: fused-update speedup evidence.

Times fig2-cadence PPO training (update every 20 rounds, 10 epochs of
20-sample mini-batches per update) over an ``E = 4`` vector env, twice:

- **seed path** — per-parameter Adam stepping each tensor through the
  autograd graph, scalar (per-step Python loop) GAE;
- **fused path** — the graph-free :class:`repro.drl.fused.FusedActorCritic`
  update writing gradients into the :class:`repro.nn.optim.FlatOptimizer`'s
  contiguous buffer, vectorised GAE, and preallocated rollout scratch.

The two paths are bitwise-identical by construction (``tests/test_drl_fused.py``
and the backend conformance suite pin every stat and every post-step
parameter), so the ratio is pure overhead removed — graph construction,
per-node closures, and per-parameter optimizer dispatch.

Runs are interleaved seed/fused and scored best-of-``REPEATS``: scheduler
noise only ever *lengthens* a run, so the minimum of several interleaved
runs converges to each path's true cost even on a loaded machine.

Evidence lands in ``benchmarks/results/training_speedup.txt`` (table) and
``training_speedup.json`` (structured payload with the asserted floor).
"""

import time

import numpy as np
import pytest

from repro.core.stackelberg import StackelbergMarket
from repro.drl.buffer import MiniBatch
from repro.drl.policy import ActorCritic
from repro.drl.ppo import PPOAgent, PPOConfig
from repro.drl.trainer import TrainerConfig, train_pricing_agent
from repro.entities.vmu import paper_fig2_population
from repro.env import VectorMigrationEnv
from repro.utils.tables import Table

pytestmark = pytest.mark.slow

NUM_ENVS = 4
ROUNDS_PER_EPISODE = 50
NUM_EPISODES = 10
REPEATS = 6
SPEEDUP_FLOOR = 2.0


def run_training(*, fused: bool) -> float:
    """One full training run; returns wall-clock seconds."""
    market = StackelbergMarket(paper_fig2_population())
    venv = VectorMigrationEnv.from_market(
        market,
        NUM_ENVS,
        seed=0,
        history_length=2,
        rounds_per_episode=ROUNDS_PER_EPISODE,
        reward_mode="utility",
    )
    trainer_config = TrainerConfig(
        num_episodes=NUM_EPISODES,
        update_interval=20,
        update_epochs=10,
        batch_size=20,
        gamma=0.0,
    )
    start = time.perf_counter()
    train_pricing_agent(
        venv,
        trainer_config=trainer_config,
        ppo_config=PPOConfig(learning_rate=1e-3),
        seed=11,
        fused=fused,
        preallocate=fused,
    )
    return time.perf_counter() - start


def interleaved_best_of(repeats=REPEATS):
    """Best wall-clock per path from ``repeats`` interleaved runs."""
    # Warm-up: first runs pay import/JIT-free numpy warmup and page faults.
    run_training(fused=False)
    run_training(fused=True)
    seed_best, fused_best = float("inf"), float("inf")
    for _ in range(repeats):
        seed_best = min(seed_best, run_training(fused=False))
        fused_best = min(fused_best, run_training(fused=True))
    return seed_best, fused_best


def update_latency(*, fused: bool, calls: int = 100, trials: int = 5) -> float:
    """Best mean seconds per ``agent.update`` on a fig2-sized mini-batch.

    Isolates the PPO-update stage the fused path rewrites (forward,
    backward, optimizer step) from the env/rollout stages the two paths
    share. A tiny learning rate keeps the repeatedly-updated parameters in
    a numerically ordinary regime so every timed call does the same work.
    """
    batch_size, obs_dim, action_dim = 20, 12, 1
    rng = np.random.default_rng(5)
    batch = MiniBatch(
        observations=rng.normal(size=(batch_size, obs_dim)),
        actions=rng.normal(size=(batch_size, action_dim)),
        old_log_probs=rng.normal(size=batch_size),
        advantages=rng.normal(size=batch_size),
        returns=rng.normal(size=batch_size),
    )
    best = float("inf")
    for _ in range(trials):
        network = ActorCritic(obs_dim, (64, 64), seed=np.random.default_rng(3))
        agent = PPOAgent(network, PPOConfig(learning_rate=1e-8), fused=fused)
        agent.update(batch)  # warm-up: lazy compiles and first allocations
        start = time.perf_counter()
        for _ in range(calls):
            agent.update(batch)
        best = min(best, (time.perf_counter() - start) / calls)
    return best


def test_training_speedup(record_table, record_json):
    seed_s, fused_s = interleaved_best_of()
    steps = NUM_EPISODES * NUM_ENVS * ROUNDS_PER_EPISODE
    speedup = seed_s / fused_s
    seed_update_s = update_latency(fused=False)
    fused_update_s = update_latency(fused=True)

    table = Table(
        headers=(
            "path",
            "best_millis",
            "env_steps_per_s",
            "update_micros",
            "speedup",
        ),
        title=(
            "PPO training, fig2 cadence "
            f"(E={NUM_ENVS}, {NUM_EPISODES}x{ROUNDS_PER_EPISODE} rounds)"
        ),
    )
    table.add_row(
        "per-parameter + scalar GAE",
        seed_s * 1e3,
        steps / seed_s,
        seed_update_s * 1e6,
        1.0,
    )
    table.add_row(
        "fused + preallocated",
        fused_s * 1e3,
        steps / fused_s,
        fused_update_s * 1e6,
        speedup,
    )
    record_table("training_speedup", table)
    # Overwrite the table mirror with the richer structured payload —
    # dashboards read the numbers without re-parsing the table rows.
    record_json(
        "training_speedup",
        {
            "benchmark": "training_speedup",
            "config": {
                "num_envs": NUM_ENVS,
                "num_episodes": NUM_EPISODES,
                "rounds_per_episode": ROUNDS_PER_EPISODE,
                "update_interval": 20,
                "update_epochs": 10,
                "batch_size": 20,
                "history_length": 2,
                "reward_mode": "utility",
                "repeats": REPEATS,
            },
            "env_steps": steps,
            "seed_path": {
                "best_seconds": seed_s,
                "env_steps_per_s": steps / seed_s,
                "ppo_update_seconds": seed_update_s,
            },
            "fused_path": {
                "best_seconds": fused_s,
                "env_steps_per_s": steps / fused_s,
                "ppo_update_seconds": fused_update_s,
            },
            "speedup": speedup,
            "ppo_update_speedup": seed_update_s / fused_update_s,
            "asserted_floor": SPEEDUP_FLOOR,
        },
    )

    # Acceptance floor: the fused path must at least double fig2-config
    # env-steps/s over the seed per-parameter/scalar-GAE path. Measured
    # headroom sits around 2.2x on an otherwise-idle runner; interleaved
    # best-of keeps the ratio stable on noisy ones.
    assert speedup >= SPEEDUP_FLOOR, (
        f"fused training speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR:.1f}x floor (seed {seed_s * 1e3:.1f} ms, "
        f"fused {fused_s * 1e3:.1f} ms)"
    )
