"""Job queue: throughput, per-job lease overhead, resume-from-artifacts.

Pushes a batch of tiny ``equilibrium_cell`` jobs through the shared-
directory queue three ways and records the evidence in
``benchmarks/results/queue_throughput.txt`` (plus a structured
``queue_throughput.json``):

- **Direct** — ``execute_job`` in a loop: the floor the queue's
  bookkeeping is measured against.
- **Queued** — enqueue + one draining :class:`QueueWorker` (lease →
  execute → store → ack, heartbeats on). The per-job difference against
  direct is the queue's full overhead: spec write, rename-lease, result
  fsync, ack unlink. Tiny cells are the worst case — on real DRL jobs
  (seconds to minutes each) this overhead is noise.
- **Resumed** — a :class:`QueueScheduler` batch against the populated
  store: every job served from artifacts, nothing executed.

Core-budget caveat: a single queue+worker on one box adds overhead, never
speedup — the queue's win is horizontal (N workers on M machines against
one shared directory) and kill-resume, neither of which a single-process
benchmark can exhibit. The recorded numbers size the *cost* of those
properties, not the fleet's gain; fan-out speedup scales with the cores
and machines actually attached.
"""

import os
import time

import pytest

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import sample_population
from repro.experiments.scheduler import Job, execute_job, market_to_payload
from repro.queue import JobQueue, QueueScheduler, QueueWorker
from repro.utils.tables import Table

pytestmark = pytest.mark.slow

JOBS = 40  # tiny cells: milliseconds each, so bookkeeping dominates


def _jobs():
    return [
        Job(
            "equilibrium_cell",
            {
                "market": market_to_payload(
                    StackelbergMarket(sample_population(4, seed=seed))
                )
            },
        )
        for seed in range(JOBS)
    ]


def test_queue_throughput(record_table, record_json, tmp_path):
    jobs = _jobs()

    start = time.perf_counter()
    direct = [execute_job(job) for job in jobs]
    direct_s = time.perf_counter() - start

    queue = JobQueue(tmp_path / "queue", lease_ttl=60.0)
    start = time.perf_counter()
    queue.enqueue_many(jobs)
    stats = QueueWorker(
        queue, worker_id="bench", poll_interval=0.01
    ).run(drain=True)
    queued_s = time.perf_counter() - start
    assert stats.executed == JOBS
    # The queued path is the direct path plus bookkeeping — bitwise.
    assert [queue.store.get(job).result for job in jobs] == direct

    resumed = QueueScheduler(tmp_path / "queue", poll_interval=0.01)
    start = time.perf_counter()
    results = resumed.run(jobs)
    resumed_s = time.perf_counter() - start
    assert resumed.cache_hits == JOBS
    assert resumed.jobs_executed == 0
    assert results == direct

    overhead_ms = (queued_s - direct_s) / JOBS * 1e3
    cores = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count()
    )
    table = Table(
        headers=("path", "jobs", "cores", "seconds", "jobs/s"),
        title=(
            "Queue — tiny equilibrium cells: direct vs queued vs resumed "
            "(single worker: measures overhead, not fleet speedup)"
        ),
    )
    table.add_row("direct", JOBS, cores, direct_s, JOBS / direct_s)
    table.add_row(
        "queued (lease+store+ack)", JOBS, cores, queued_s, JOBS / queued_s
    )
    table.add_row(
        "resumed from artifacts", JOBS, cores, resumed_s, JOBS / resumed_s
    )
    record_table("queue_throughput", table)
    record_json(
        "queue_throughput",
        {
            "jobs": JOBS,
            "cores": cores,
            "direct_s": direct_s,
            "queued_s": queued_s,
            "resumed_s": resumed_s,
            "queued_jobs_per_s": JOBS / queued_s,
            "lease_ack_overhead_ms_per_job": overhead_ms,
            "resume_speedup_vs_direct": direct_s / resumed_s,
            "caveat": (
                "single worker on one box: numbers size the queue's "
                "bookkeeping cost, not fleet fan-out; speedup scales "
                "with workers/machines attached to the directory"
            ),
        },
    )

    # The queue must stay usable for tiny jobs (bounded bookkeeping) and
    # resume must beat recomputing — the properties the PR claims.
    assert overhead_ms < 250.0
    assert resumed_s < direct_s + queued_s  # serves from disk, no solver
