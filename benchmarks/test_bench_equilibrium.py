"""Stacked equilibrium solve: speedup evidence.

Times ``MarketStack.equilibria_stacked`` against the per-market
``equilibrium()`` loop over a heterogeneous grid (ragged populations,
mixed capacity enforcement) for M ∈ {8, 50} and records the evidence in
``benchmarks/results/equilibrium_speedup.txt``.

The comparison is exact by construction (the per-market call is the
``M = 1`` case of the stacked solve — see
``tests/test_core_equilibria_stacked.py``), so the timing difference is
pure per-market Python overhead removed: the looped path pays the
candidate enumeration, the 256-point refinement grid, and ~45 scalar
golden-section probes *per market*, while the stacked path runs the same
stages once over ``(M, ·)`` matrices.

Both paths memoise solved equilibria on their (immutable) stacks, so each
timed run rebuilds its markets from shared populations — the measurement
is the solve, never the memo.
"""

import time

import numpy as np
import pytest

from repro.core import MarketStack
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import sample_population
from repro.utils.tables import Table

pytestmark = pytest.mark.slow

MARKET_COUNTS = (8, 50)
REPEATS = 5


def market_specs(count):
    """Population + config pairs for a heterogeneous market grid."""
    rng = np.random.default_rng(1234)
    specs = []
    for _ in range(count):
        population = sample_population(
            int(rng.integers(1, 9)), seed=int(rng.integers(0, 2**31))
        )
        config = MarketConfig(
            unit_cost=float(rng.uniform(3.0, 9.0)),
            max_bandwidth=float(rng.uniform(20.0, 60.0)),
            enforce_capacity=bool(rng.integers(0, 2)),
        )
        specs.append((population, config))
    return specs


def fresh_markets(specs):
    """New market objects (empty solve memos) over the shared populations."""
    return [
        StackelbergMarket(population, config=config)
        for population, config in specs
    ]


def best_of(fn, repeats=REPEATS):
    """Minimum wall-clock of ``repeats`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def equilibrium_table():
    table = Table(
        headers=("markets", "path", "best_millis", "speedup"),
        title="Equilibrium solve — stacked vs per-market loop",
    )
    speedups = {}
    for count in MARKET_COUNTS:
        specs = market_specs(count)

        def looped():
            for market in fresh_markets(specs):
                market.equilibrium()

        def stacked():
            MarketStack(fresh_markets(specs)).equilibria_stacked()

        looped_s = best_of(looped)
        stacked_s = best_of(stacked)
        speedups[count] = looped_s / stacked_s
        table.add_row(count, "per-market loop", looped_s * 1e3, 1.0)
        table.add_row(count, "stacked (one pass)", stacked_s * 1e3, speedups[count])
    return table, speedups


def test_equilibrium_speedup(record_table):
    table, speedups = equilibrium_table()
    record_table("equilibrium_speedup", table)

    # Acceptance floor: the 50-market stacked solve must clearly beat 50
    # per-market solves. The loop baseline is no pushover anymore — small
    # solves refine through the scalar fast path (_refine_rows_scalar),
    # which cut the per-market solve ~4x — so the ratio sits around 7-8x
    # (it was 16x+ against the pre-fast-path baseline). Assert a floor
    # that still proves the batch removes per-market overhead while
    # leaving headroom for shared noisy runners.
    assert speedups[50] >= 4.0


def test_seam_overhead(record_json):
    """The ``repro.backend.xp`` seam adds ~no cost under the numpy default.

    Two mechanisms make the seam free in steady state, both measured here:

    - resolved attributes ARE the numpy callables (``xp.maximum is
      np.maximum`` — the proxy memoises ``getattr`` results into its own
      ``__dict__``, cleared only on a backend switch), so there is no
      per-call wrapper;
    - the remaining cost is one instance-attribute lookup per ``xp.<op>``
      expression, timed below against the equivalent ``np.<op>`` module
      lookup over a hot-path-sized workload.

    The macro number (a 50-market stacked round through the seam) is
    recorded for trend tracking; it has no non-seam twin to diff against —
    the hot path only exists in seam form — which is exactly why the
    micro dispatch ratio is the overhead evidence.
    """
    from repro.backend import SEAM_ATTRS, active_backend, xp

    assert active_backend().name == "numpy"
    # No per-call indirection: the seam resolves to the numpy callables.
    for name in SEAM_ATTRS:
        assert getattr(xp, name) is getattr(np, name)

    a = np.linspace(0.5, 9.5, 64)
    b = np.linspace(9.5, 0.5, 64)
    calls = 2000

    def via_np():
        for _ in range(calls):
            np.maximum(a, b)

    def via_xp():
        xp.maximum  # ensure the one-time memoisation is not in the timing
        for _ in range(calls):
            xp.maximum(a, b)

    np_s = best_of(via_np, repeats=20)
    xp_s = best_of(via_xp, repeats=20)
    per_call_overhead_ns = (xp_s - np_s) / calls * 1e9

    stack = MarketStack(fresh_markets(market_specs(50)))
    prices = np.array([m.config.unit_cost * 1.5 for m in stack.markets])

    def stacked_round():
        stack.outcomes_stacked(prices)

    round_s = best_of(stacked_round, repeats=20)

    record_json(
        "seam_overhead",
        {
            "benchmark": "seam_overhead",
            "backend": active_backend().name,
            "dispatch": {
                "calls": calls,
                "np_best_seconds": np_s,
                "xp_best_seconds": xp_s,
                "per_call_overhead_ns": per_call_overhead_ns,
            },
            "stacked_round_50_markets_best_seconds": round_s,
            "attrs_identical_to_numpy": True,
        },
    )

    # One attribute lookup per op: tens of nanoseconds, far below any
    # kernel's cost. Bound loosely — microbenchmarks on shared runners
    # jitter — while still catching an accidental per-call wrapper
    # (which would cost a microsecond-scale Python frame per op).
    assert per_call_overhead_ns < 500.0
