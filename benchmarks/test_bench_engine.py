"""Batched simulation engine: speedup evidence.

Times the two hot paths the engine vectorises and records the evidence in
``benchmarks/results/engine_speedup.txt``:

- **Market evaluation** — a 256-point leader price grid through one
  ``outcomes_batch`` pass vs. 256 scalar Stackelberg solves (the
  acceptance floor is 3×; observed is far higher).
- **Rollout collection** — E envs stepped through one episode by the
  vector path (one ``act_batch`` forward + one batched market solve per
  round) vs. E sequential single-env rollouts.

Both comparisons are exact by construction (see tests/test_sim_engine.py
and tests/test_env_vector.py), so the timing difference is pure overhead
removed, not a different computation.
"""

import time

import pytest
import numpy as np

from repro.core.stackelberg import StackelbergMarket
from repro.drl.policy import ActionScaler, ActorCritic
from repro.entities.vmu import paper_fig2_population
from repro.env import MigrationGameEnv, VectorMigrationEnv
from repro.sim import batched_landscape, price_grid, scalar_landscape
from repro.utils.tables import Table

pytestmark = pytest.mark.slow

GRID_POINTS = 256
NUM_ENVS = 8
ROUNDS = 50


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def market_evaluation_table() -> tuple[Table, float]:
    market = StackelbergMarket(paper_fig2_population())
    grid = price_grid(market, GRID_POINTS)

    batched = best_of(lambda: batched_landscape(market, grid), repeats=5)
    scalar = best_of(lambda: scalar_landscape(market, grid), repeats=5)
    speedup = scalar / batched

    table = Table(
        headers=("path", "grid_points", "best_millis", "speedup"),
        title="Engine — batched vs scalar market evaluation",
    )
    table.add_row("scalar (P solves)", GRID_POINTS, scalar * 1e3, 1.0)
    table.add_row("batched (one pass)", GRID_POINTS, batched * 1e3, speedup)
    return table, speedup


def _sequential_rollouts(market, seeds, network, scaler):
    for seed in seeds:
        env = MigrationGameEnv(
            market, history_length=4, rounds_per_episode=ROUNDS, seed=seed
        )
        rng = np.random.default_rng(0)
        observation = env.reset()
        for _ in range(ROUNDS):
            raw, _, _ = network.act(observation, seed=rng)
            observation, _, _, _ = env.step(float(scaler.to_price(raw[0])))


def _vector_rollouts(market, seeds, network, scaler):
    venv = VectorMigrationEnv.from_market(
        market, len(seeds), seeds=seeds, history_length=4, rounds_per_episode=ROUNDS
    )
    rng = np.random.default_rng(0)
    observations = venv.reset()
    for _ in range(ROUNDS):
        raws, _, _ = network.act_batch(observations, seed=rng)
        observations, _, _, _ = venv.step(scaler.to_price(raws[:, 0]))


def rollout_collection_table() -> tuple[Table, float]:
    market = StackelbergMarket(paper_fig2_population())
    seeds = list(range(NUM_ENVS))
    env = MigrationGameEnv(market, history_length=4, rounds_per_episode=ROUNDS)
    network = ActorCritic(env.observation_dim, seed=0)
    scaler = ActionScaler(env.action_low, env.action_high)

    vector = best_of(
        lambda: _vector_rollouts(market, seeds, network, scaler), repeats=3
    )
    sequential = best_of(
        lambda: _sequential_rollouts(market, seeds, network, scaler), repeats=3
    )
    speedup = sequential / vector

    table = Table(
        headers=("path", "envs", "rounds", "best_millis", "speedup"),
        title="Engine — vectorised vs sequential rollout collection",
    )
    table.add_row("sequential (E runs)", NUM_ENVS, ROUNDS, sequential * 1e3, 1.0)
    table.add_row("vectorised (env batch)", NUM_ENVS, ROUNDS, vector * 1e3, speedup)
    return table, speedup


def test_engine_speedups(record_table):
    market_table, market_speedup = market_evaluation_table()
    rollout_table, rollout_speedup = rollout_collection_table()
    record_table("engine_speedup", market_table, rollout_table)

    # Acceptance floor: >= 3x on a 256-point grid (typically 30-80x).
    assert market_speedup >= 3.0
    assert rollout_speedup >= 1.5
