"""N-MSP oligopoly solve: lattice-batched best response speedup evidence.

Times the Gauss-Seidel equilibrium solve with the lattice-batched best
response (one vectorised ``(P, N)`` utility evaluation per MSP per
sweep) against the scalar reference (one ``outcome()`` call per lattice
point), over a fixed number of sweeps so both paths do identical
economic work. The default tick gives a 901-point lattice (≥ 256, the
regime the acceptance criterion names), and the two paths are asserted
bitwise-equal before any timing is trusted.

Evidence lands in ``benchmarks/results/oligopoly_speedup.txt`` (table)
and ``oligopoly_speedup.json`` (structured payload via ``record_json``).
"""

import time

import numpy as np
import pytest

from repro.core.multimsp import MspSpec, MultiMspMarket
from repro.entities.vmu import paper_fig2_population
from repro.utils.tables import Table

pytestmark = pytest.mark.slow

SWEEPS = 8
REPEATS = 3
INITIAL = [25.0, 30.0]
MIN_SPEEDUP = 10.0


def duopoly() -> MultiMspMarket:
    # Default tick 0.05 on [5, 50] → a 901-point lattice per MSP.
    return MultiMspMarket(
        paper_fig2_population(),
        [
            MspSpec("msp-a", unit_cost=5.0, capacity=0.3),
            MspSpec("msp-b", unit_cost=5.0, capacity=0.3),
        ],
    )


def solve(batched: bool):
    return duopoly().equilibrium(
        initial_prices=INITIAL,
        max_iterations=SWEEPS,
        tolerance=0.0,  # never converge early: fixed work on both paths
        batched=batched,
        record_trace=True,
    )


def best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_oligopoly_lattice_batching_speedup(record_table, record_json):
    market = duopoly()
    lattice_points = market._price_lattice(5.0).size
    assert lattice_points >= 256

    batched = solve(batched=True)
    scalar = solve(batched=False)
    # Bitwise equality first — a fast wrong answer is worthless.
    np.testing.assert_array_equal(batched.prices, scalar.prices)
    np.testing.assert_array_equal(
        batched.trace.profiles, scalar.trace.profiles
    )
    np.testing.assert_array_equal(
        batched.trace.residuals, scalar.trace.residuals
    )

    batched_seconds = best_of(lambda: solve(batched=True))
    scalar_seconds = best_of(lambda: solve(batched=False))
    speedup = scalar_seconds / batched_seconds

    table = Table(
        headers=("path", "lattice", "sweeps", "best_millis", "speedup"),
        title="Oligopoly Gauss-Seidel — lattice-batched vs scalar best response",
    )
    table.add_row("scalar", lattice_points, SWEEPS, scalar_seconds * 1e3, 1.0)
    table.add_row(
        "batched", lattice_points, SWEEPS, batched_seconds * 1e3, speedup
    )
    record_table("oligopoly_speedup", table)
    record_json(
        "oligopoly_speedup",
        {
            "benchmark": "oligopoly_speedup",
            "lattice_points": int(lattice_points),
            "sweeps": SWEEPS,
            "num_msps": market.num_msps,
            "scalar_seconds": scalar_seconds,
            "batched_seconds": batched_seconds,
            "speedup": speedup,
            "bitwise_equal": True,
            "min_speedup_required": MIN_SPEEDUP,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"lattice batching must be >= {MIN_SPEEDUP}x at "
        f"{lattice_points} lattice points, got {speedup:.1f}x"
    )
